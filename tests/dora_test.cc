// Tests for the DORA core: local lock table semantics, routing rules, flow
// graph execution through executors and RVPs, abort propagation, the
// deadlock-avoidance enqueue protocol, rebalancing, and the plan advisor.

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "dora/resource_manager.h"
#include "util/rng.h"

namespace doradb {
namespace dora {
namespace {

Database::Options SmallDb() {
  Database::Options o;
  o.buffer_frames = 1024;
  o.lock.wait_timeout_us = 500000;
  return o;
}

// ----------------------------------------------------------- LocalLockTable

class LocalLockTableTest : public ::testing::Test {
 protected:
  LocalLockTableTest() : db_(SmallDb()) {}

  std::shared_ptr<DoraTxn> Txn() {
    return std::make_shared<DoraTxn>(&db_, db_.Begin());
  }

  Action* MakeAction(DoraTxn* t, uint64_t key, LocalMode m,
                     bool whole = false) {
    auto a = std::make_unique<Action>();
    a->dtxn = t;
    a->routing_value = key;
    a->mode = m;
    a->whole_dataset = whole;
    actions_.push_back(std::move(a));
    return actions_.back().get();
  }

  Database db_;
  LocalLockTable table_;
  std::vector<std::unique_ptr<Action>> actions_;
};

TEST_F(LocalLockTableTest, SharedLocksCompatible) {
  auto t1 = Txn(), t2 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kS)));
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t2.get(), 7, LocalMode::kS)));
}

TEST_F(LocalLockTableTest, ExclusiveConflictsParkAction) {
  auto t1 = Txn(), t2 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  Action* blocked = MakeAction(t2.get(), 7, LocalMode::kX);
  EXPECT_FALSE(table_.TryAcquire(blocked));
  EXPECT_EQ(table_.num_parked(), 1u);

  std::vector<Action*> runnable;
  table_.ReleaseAll(t1.get(), &runnable);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], blocked);
}

TEST_F(LocalLockTableTest, DifferentKeysNoConflict) {
  auto t1 = Txn(), t2 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 1, LocalMode::kX)));
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t2.get(), 2, LocalMode::kX)));
}

TEST_F(LocalLockTableTest, ReentrantSameTxn) {
  auto t1 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)))
      << "same transaction must re-enter its own lock";
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kS)));
}

TEST_F(LocalLockTableTest, ReentrantBypassesWaitQueue) {
  auto t1 = Txn(), t2 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  EXPECT_FALSE(table_.TryAcquire(MakeAction(t2.get(), 7, LocalMode::kX)));
  // t1's second action must not queue behind t2 (self-deadlock otherwise).
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
}

TEST_F(LocalLockTableTest, FifoOrderAmongWaiters) {
  auto t1 = Txn(), t2 = Txn(), t3 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  Action* w2 = MakeAction(t2.get(), 7, LocalMode::kX);
  Action* w3 = MakeAction(t3.get(), 7, LocalMode::kX);
  EXPECT_FALSE(table_.TryAcquire(w2));
  EXPECT_FALSE(table_.TryAcquire(w3));
  std::vector<Action*> runnable;
  table_.ReleaseAll(t1.get(), &runnable);
  ASSERT_EQ(runnable.size(), 1u) << "w3 must stay behind w2 (both X)";
  EXPECT_EQ(runnable[0], w2);
  runnable.clear();
  table_.ReleaseAll(t2.get(), &runnable);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], w3);
}

TEST_F(LocalLockTableTest, SharedWaitersGrantedTogether) {
  auto t1 = Txn(), t2 = Txn(), t3 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  EXPECT_FALSE(table_.TryAcquire(MakeAction(t2.get(), 7, LocalMode::kS)));
  EXPECT_FALSE(table_.TryAcquire(MakeAction(t3.get(), 7, LocalMode::kS)));
  std::vector<Action*> runnable;
  table_.ReleaseAll(t1.get(), &runnable);
  EXPECT_EQ(runnable.size(), 2u) << "both S waiters wake together";
}

TEST_F(LocalLockTableTest, WholeDatasetConflictsWithExact) {
  auto t1 = Txn(), t2 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 7, LocalMode::kX)));
  Action* whole = MakeAction(t2.get(), 0, LocalMode::kX, /*whole=*/true);
  EXPECT_FALSE(table_.TryAcquire(whole)) << "whole waits for exact locks";
  std::vector<Action*> runnable;
  table_.ReleaseAll(t1.get(), &runnable);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], whole);
  // While whole-X is held, exact locks must wait.
  auto t3 = Txn();
  EXPECT_FALSE(table_.TryAcquire(MakeAction(t3.get(), 9, LocalMode::kS)));
  runnable.clear();
  table_.ReleaseAll(t2.get(), &runnable);
  EXPECT_EQ(runnable.size(), 1u);
}

TEST_F(LocalLockTableTest, EmptyAfterAllReleases) {
  auto t1 = Txn();
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 1, LocalMode::kX)));
  EXPECT_TRUE(table_.TryAcquire(MakeAction(t1.get(), 2, LocalMode::kS)));
  EXPECT_FALSE(table_.Empty());
  std::vector<Action*> runnable;
  table_.ReleaseAll(t1.get(), &runnable);
  EXPECT_TRUE(table_.Empty());
}

// ---------------------------------------------------------------- Routing

TEST(RoutingTest, UniformPartitioning) {
  auto rule = RoutingRule::Uniform(100, 4);
  EXPECT_EQ(rule->Route(0), 0u);
  EXPECT_EQ(rule->Route(24), 0u);
  EXPECT_EQ(rule->Route(25), 1u);
  EXPECT_EQ(rule->Route(99), 3u);
  EXPECT_EQ(rule->Route(1000), 3u) << "values beyond the space clamp to last";
}

TEST(RoutingTest, SingleExecutorTakesAll) {
  auto rule = RoutingRule::Uniform(1000, 1);
  EXPECT_EQ(rule->Route(0), 0u);
  EXPECT_EQ(rule->Route(999), 0u);
}

TEST(RoutingTest, InstallSwapsRule) {
  RoutingTable table;
  table.Install(RoutingRule::Uniform(100, 2));
  EXPECT_EQ(table.Route(80), 1u);
  auto rule = std::make_shared<RoutingRule>();
  rule->boundaries = {90};
  rule->executor_of_dataset = {0, 1};
  table.Install(rule);
  EXPECT_EQ(table.Route(80), 0u) << "new rule shifts the boundary";
}

// ----------------------------------------------------------- engine + txns

class DoraEngineTest : public ::testing::Test {
 protected:
  DoraEngineTest() : db_(SmallDb()) {
    EXPECT_TRUE(db_.catalog()->CreateTable("a", &table_a_).ok());
    EXPECT_TRUE(db_.catalog()->CreateTable("b", &table_b_).ok());
    engine_ = std::make_unique<DoraEngine>(&db_);
    engine_->RegisterTable(table_a_, 100, 2);
    engine_->RegisterTable(table_b_, 100, 1);
    engine_->Start();
  }
  ~DoraEngineTest() override { engine_->Stop(); }

  Database db_;
  TableId table_a_, table_b_;
  std::unique_ptr<DoraEngine> engine_;
};

TEST_F(DoraEngineTest, SinglePhaseSingleActionCommits) {
  auto dtxn = engine_->BeginTxn();
  std::atomic<bool> ran{false};
  FlowGraph g;
  g.AddPhase().AddAction(table_a_, 5, LocalMode::kX, [&](ActionEnv& env) {
    ran = true;
    Rid rid;
    return env.db->Insert(env.txn, table_a_, "payload", &rid,
                          AccessOptions::RidOnly());
  });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(engine_->txns_committed(), 1u);
  EXPECT_EQ(db_.catalog()->Heap(table_a_)->record_count(), 1u);
}

TEST_F(DoraEngineTest, ActionsRouteToCorrectExecutor) {
  std::atomic<uint32_t> exec_for_low{999}, exec_for_high{999};
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase()
      .AddAction(table_a_, 1, LocalMode::kS,
                 [&](ActionEnv& env) {
                   exec_for_low = env.self->index_in_table();
                   return Status::OK();
                 })
      .AddAction(table_a_, 99, LocalMode::kS, [&](ActionEnv& env) {
        exec_for_high = env.self->index_in_table();
        return Status::OK();
      });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  EXPECT_EQ(exec_for_low.load(), 0u);
  EXPECT_EQ(exec_for_high.load(), 1u);
}

TEST_F(DoraEngineTest, PhasesRunInOrder) {
  std::vector<int> order;
  std::mutex mu;
  auto record = [&](int v) {
    std::lock_guard<std::mutex> g(mu);
    order.push_back(v);
  };
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase()
      .AddAction(table_a_, 1, LocalMode::kS,
                 [&](ActionEnv&) {
                   record(1);
                   return Status::OK();
                 })
      .AddAction(table_a_, 99, LocalMode::kS, [&](ActionEnv&) {
        record(1);
        return Status::OK();
      });
  g.AddPhase().AddAction(table_b_, 1, LocalMode::kS, [&](ActionEnv&) {
    record(2);
    return Status::OK();
  });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 2) << "phase 2 must run after both phase-1 actions";
}

TEST_F(DoraEngineTest, AbortInPhaseOneSkipsPhaseTwo) {
  std::atomic<bool> phase2_ran{false};
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase().AddAction(table_a_, 1, LocalMode::kX, [&](ActionEnv&) {
    return Status::NotFound("bad input");
  });
  g.AddPhase().AddAction(table_b_, 1, LocalMode::kX, [&](ActionEnv&) {
    phase2_ran = true;
    return Status::OK();
  });
  const Status s = engine_->Run(dtxn, std::move(g));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(phase2_ran.load());
  EXPECT_EQ(engine_->txns_aborted(), 1u);
}

TEST_F(DoraEngineTest, AbortRollsBackStorageEffects) {
  auto dtxn = engine_->BeginTxn();
  Rid inserted;
  FlowGraph g;
  g.AddPhase()
      .AddAction(table_a_, 1, LocalMode::kX,
                 [&](ActionEnv& env) {
                   return env.db->Insert(env.txn, table_a_, "doomed",
                                         &inserted, AccessOptions::RidOnly());
                 })
      .AddAction(table_a_, 99, LocalMode::kX, [&](ActionEnv&) {
        return Status::InvalidArgument("fail sibling");
      });
  EXPECT_FALSE(engine_->Run(dtxn, std::move(g)).ok());
  // Depending on scheduling the insert may have been skipped entirely
  // (sibling failed first); if it did run, it must have been rolled back.
  if (inserted.Valid()) {
    std::string out;
    EXPECT_TRUE(
        db_.catalog()->Heap(table_a_)->Get(inserted, &out).IsNotFound())
        << "aborted transaction's insert must be rolled back";
  }
  EXPECT_EQ(db_.catalog()->Heap(table_a_)->record_count(), 0u);
}

TEST_F(DoraEngineTest, ConflictingTxnsSerialize) {
  // Two concurrent transactions incrementing the same logical record via
  // the same routing key must serialize on the local lock.
  auto setup = engine_->BeginTxn();
  Rid rid;
  {
    FlowGraph g;
    g.AddPhase().AddAction(table_a_, 7, LocalMode::kX, [&](ActionEnv& env) {
      return env.db->Insert(env.txn, table_a_, "00000000", &rid,
                            AccessOptions::RidOnly());
    });
    ASSERT_TRUE(engine_->Run(setup, std::move(g)).ok());
  }
  constexpr int kThreads = 4, kIters = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto dtxn = engine_->BeginTxn();
        FlowGraph g;
        g.AddPhase().AddAction(table_a_, 7, LocalMode::kX,
                               [&](ActionEnv& env) {
          std::string val;
          DORADB_RETURN_NOT_OK(env.db->Read(env.txn, table_a_, rid, &val,
                                            AccessOptions::NoCc()));
          const uint64_t n = std::stoull(val) + 1;
          char buf[9];
          std::snprintf(buf, sizeof(buf), "%08lu", n);
          return env.db->Update(env.txn, table_a_, rid,
                                std::string_view(buf, 8),
                                AccessOptions::NoCc());
        });
        if (!engine_->Run(dtxn, std::move(g)).ok()) failures++;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  std::string val;
  ASSERT_TRUE(db_.catalog()->Heap(table_a_)->Get(rid, &val).ok());
  EXPECT_EQ(std::stoull(val), uint64_t(kThreads * kIters))
      << "lost update => local locking is broken";
}

TEST_F(DoraEngineTest, SameGraphTxnsNeverDeadlock) {
  // §4.2.3: transactions with the same flow graph cannot deadlock thanks to
  // the atomic ordered enqueue. Hammer two keys from many clients with
  // multi-action single-phase graphs.
  constexpr int kThreads = 6, kIters = 60;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto dtxn = engine_->BeginTxn();
        FlowGraph g;
        g.AddPhase()
            .AddAction(table_a_, 3, LocalMode::kX,
                       [](ActionEnv&) { return Status::OK(); })
            .AddAction(table_a_, 77, LocalMode::kX,
                       [](ActionEnv&) { return Status::OK(); })
            .AddAction(table_b_, 5, LocalMode::kX,
                       [](ActionEnv&) { return Status::OK(); });
        if (!engine_->Run(dtxn, std::move(g)).ok()) failures++;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0) << "no txn may deadlock or time out";
  EXPECT_EQ(engine_->txns_committed(),
            uint64_t(kThreads * kIters) + 0u);
}

TEST_F(DoraEngineTest, WholeDatasetActionDrainsExecutor) {
  std::atomic<int> whole_ran{0};
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase()
      .AddWholeDatasetAction(table_a_, 0, LocalMode::kX,
                             [&](ActionEnv&) {
                               whole_ran++;
                               return Status::OK();
                             })
      .AddWholeDatasetAction(table_a_, 1, LocalMode::kX, [&](ActionEnv&) {
        whole_ran++;
        return Status::OK();
      });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  EXPECT_EQ(whole_ran.load(), 2);
}

TEST_F(DoraEngineTest, RebalanceMovesBoundary) {
  // Shift everything to executor 0, then verify routing changed and the
  // system still executes transactions correctly.
  auto rule = std::make_shared<RoutingRule>();
  rule->boundaries = {95};
  rule->executor_of_dataset = {0, 1};
  ASSERT_TRUE(engine_->Rebalance(table_a_, rule).ok());
  EXPECT_EQ(engine_->RouteIndex(table_a_, 80), 0u);
  EXPECT_EQ(engine_->RouteIndex(table_a_, 96), 1u);

  std::atomic<uint32_t> ran_on{999};
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase().AddAction(table_a_, 80, LocalMode::kX, [&](ActionEnv& env) {
    ran_on = env.self->index_in_table();
    return Status::OK();
  });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  EXPECT_EQ(ran_on.load(), 0u);
}

TEST_F(DoraEngineTest, RebalanceUnderLoad) {
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread load([&] {
    Rng rng(1);
    while (!stop.load()) {
      auto dtxn = engine_->BeginTxn();
      const uint64_t key = rng.UniformInt(uint64_t{0}, uint64_t{99});
      FlowGraph g;
      g.AddPhase().AddAction(table_a_, key, LocalMode::kX,
                             [](ActionEnv&) { return Status::OK(); });
      if (!engine_->Run(dtxn, std::move(g)).ok()) failures++;
    }
  });
  for (int i = 0; i < 5; ++i) {
    auto rule = std::make_shared<RoutingRule>();
    rule->boundaries = {uint64_t(20 + 10 * i)};
    rule->executor_of_dataset = {0, 1};
    ASSERT_TRUE(engine_->Rebalance(table_a_, rule).ok());
  }
  stop = true;
  load.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(DoraEngineTest, SerializedPlanRunsActionsSequentially) {
  FlowGraph g;
  std::vector<int> order;
  std::mutex mu;
  g.AddPhase()
      .AddAction(table_a_, 1, LocalMode::kS,
                 [&](ActionEnv&) {
                   std::lock_guard<std::mutex> lk(mu);
                   order.push_back(1);
                   return Status::OK();
                 })
      .AddAction(table_a_, 99, LocalMode::kS, [&](ActionEnv&) {
        std::lock_guard<std::mutex> lk(mu);
        order.push_back(2);
        return Status::OK();
      });
  FlowGraph serial = std::move(g).Serialized();
  EXPECT_EQ(serial.phases().size(), 2u);
  auto dtxn = engine_->BeginTxn();
  ASSERT_TRUE(engine_->Run(dtxn, std::move(serial)).ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_F(DoraEngineTest, SerialPlanAvoidsWastedWorkOnAbort) {
  // §A.4 DORA-S: when the first action fails, the second never executes.
  std::atomic<bool> second_ran{false};
  FlowGraph g;
  g.AddPhase()
      .AddAction(table_a_, 1, LocalMode::kX,
                 [](ActionEnv&) { return Status::NotFound("wrong input"); })
      .AddAction(table_a_, 99, LocalMode::kX, [&](ActionEnv&) {
        second_ran = true;
        return Status::OK();
      });
  auto dtxn = engine_->BeginTxn();
  EXPECT_FALSE(engine_->Run(dtxn, std::move(g).Serialized()).ok());
  EXPECT_FALSE(second_ran.load());
}

// ---------------------------------------------------------- epoch batching

// Database + engine with epoch batching armed at `min_batch`. `pipelined`
// turns on pipelined commit over the partitioned log backend, so the
// epoch-close path (bulk commit append + batched acks) is exercised end to
// end; without it, epochs only reorder execution.
class EpochBatchTest : public ::testing::Test {
 protected:
  void Build(uint32_t min_batch, bool pipelined) {
    if (engine_) engine_->Stop();
    engine_.reset();
    db_.reset();
    Database::Options dbo = SmallDb();
    if (pipelined) {
      dbo.log_backend = LogBackendKind::kPartitioned;
      dbo.log_partitions = 2;
    }
    db_ = std::make_unique<Database>(dbo);
    ASSERT_TRUE(db_->catalog()->CreateTable("a", &table_a_).ok());
    DoraEngine::Options eo;
    eo.epoch_batch_min = min_batch;
    eo.pipelined_commit = pipelined;
    engine_ = std::make_unique<DoraEngine>(db_.get(), eo);
    engine_->RegisterTable(table_a_, 100, 2);
    engine_->Start();
  }
  void TearDown() override {
    if (engine_) engine_->Stop();
  }

  // One counter record per routing key in `keys`, initialized to zero.
  void SeedCounters(const std::vector<uint64_t>& keys) {
    rids_.clear();
    for (uint64_t key : keys) {
      auto dtxn = engine_->BeginTxn();
      Rid rid;
      FlowGraph g;
      g.AddPhase().AddAction(table_a_, key, LocalMode::kX,
                             [&](ActionEnv& env) {
        return env.db->Insert(env.txn, table_a_, "00000000", &rid,
                              AccessOptions::RidOnly());
      });
      ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
      rids_.push_back(rid);
    }
    keys_ = keys;
  }

  // TPC-B-shaped mix: `threads` clients each run `iters` single-action
  // increments against rng-chosen counters. Returns the client-observed
  // failure count; the per-counter totals are checked by SumCounters().
  int RunIncrementMix(int threads, int iters) {
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(uint64_t(t) + 1);
        for (int i = 0; i < iters; ++i) {
          const size_t pick =
              rng.UniformInt(size_t{0}, keys_.size() - 1);
          auto dtxn = engine_->BeginTxn();
          FlowGraph g;
          g.AddPhase().AddAction(table_a_, keys_[pick], LocalMode::kX,
                                 [&, pick](ActionEnv& env) {
            std::string val;
            DORADB_RETURN_NOT_OK(env.db->Read(env.txn, table_a_, rids_[pick],
                                              &val, AccessOptions::NoCc()));
            const uint64_t n = std::stoull(val) + 1;
            char buf[9];
            std::snprintf(buf, sizeof(buf), "%08lu", n);
            return env.db->Update(env.txn, table_a_, rids_[pick],
                                  std::string_view(buf, 8),
                                  AccessOptions::NoCc());
          });
          if (!engine_->Run(dtxn, std::move(g)).ok()) failures++;
        }
      });
    }
    for (auto& c : clients) c.join();
    return failures.load();
  }

  uint64_t SumCounters() {
    uint64_t sum = 0;
    for (const Rid& rid : rids_) {
      std::string val;
      EXPECT_TRUE(db_->catalog()->Heap(table_a_)->Get(rid, &val).ok());
      sum += std::stoull(val);
    }
    return sum;
  }

  std::unique_ptr<Database> db_;
  TableId table_a_ = 0;
  std::unique_ptr<DoraEngine> engine_;
  std::vector<uint64_t> keys_;
  std::vector<Rid> rids_;
};

TEST_F(EpochBatchTest, BatchedConflictsSerialize) {
  // Threshold 1 forces every drain onto the epoch path. Hammering a single
  // counter from many clients must still serialize through the local lock
  // table: admission order (and therefore parking) is untouched by the
  // key-sorted execution reorder.
  Build(/*min_batch=*/1, /*pipelined=*/false);
  SeedCounters({7});
  EXPECT_EQ(RunIncrementMix(/*threads=*/4, /*iters=*/50), 0);
  EXPECT_EQ(SumCounters(), 200u) << "lost update under epoch batching";
  const auto stats = engine_->CollectInboxStats();
  EXPECT_GT(stats.epoch_actions, 0u)
      << "threshold 1 must route ready actions through epoch groups";
  EXPECT_GE(stats.epoch_actions, stats.epoch_groups);
}

TEST_F(EpochBatchTest, TicketedGraphsNeverDeadlockUnderBatching) {
  // §4.2.3 under batching: multi-action graphs take the ticket-ordered
  // admission path while concurrent single-action traffic runs in epoch
  // groups on the same executors. Neither path may starve or deadlock the
  // other, and ticket order must hold across epoch boundaries.
  Build(/*min_batch=*/1, /*pipelined=*/false);
  SeedCounters({3, 77});
  constexpr int kThreads = 4, kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto dtxn = engine_->BeginTxn();
        FlowGraph g;
        g.AddPhase()
            .AddAction(table_a_, 3, LocalMode::kX,
                       [](ActionEnv&) { return Status::OK(); })
            .AddAction(table_a_, 77, LocalMode::kX,
                       [](ActionEnv&) { return Status::OK(); });
        if (!engine_->Run(dtxn, std::move(g)).ok()) failures++;
      }
    });
  }
  const int mix_failures = RunIncrementMix(/*threads=*/2, /*iters=*/40);
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0) << "ticketed txn deadlocked or timed out";
  EXPECT_EQ(mix_failures, 0);
  EXPECT_EQ(SumCounters(), 80u);
}

TEST_F(EpochBatchTest, EpochAcksMatchPerTxnAcks) {
  // Same pipelined-commit TPC-B-style mix over the partitioned log, acked
  // per-transaction (batching off) vs per-epoch (threshold 1). The durable
  // invariant — every committed increment visible, none duplicated — must
  // be identical.
  constexpr int kThreads = 4, kIters = 40;
  const std::vector<uint64_t> keys = {5, 25, 45, 65, 85};
  uint64_t sums[2];
  int i = 0;
  for (const uint32_t min_batch : {0u, 1u}) {
    Build(min_batch, /*pipelined=*/true);
    SeedCounters(keys);
    EXPECT_EQ(RunIncrementMix(kThreads, kIters), 0);
    sums[i++] = SumCounters();
    if (min_batch != 0) {
      EXPECT_GT(engine_->CollectInboxStats().epoch_actions, 0u);
    }
  }
  EXPECT_EQ(sums[0], uint64_t(kThreads * kIters));
  EXPECT_EQ(sums[1], sums[0])
      << "epoch-granular acks changed the committed state";
}

TEST_F(EpochBatchTest, HighThresholdKeepsPerActionPathAtLowLoad) {
  // A sequential client never piles up a drain of 64 ready actions, so an
  // armed-but-high threshold must leave the per-action path (and its
  // latency profile) untouched: zero epoch groups, all commits fine.
  Build(/*min_batch=*/64, /*pipelined=*/false);
  SeedCounters({7});
  EXPECT_EQ(RunIncrementMix(/*threads=*/1, /*iters=*/50), 0);
  EXPECT_EQ(SumCounters(), 50u);
  const auto stats = engine_->CollectInboxStats();
  EXPECT_EQ(stats.epoch_groups, 0u)
      << "low load must never trip the batch threshold";
}

// ------------------------------------------------------------- PlanAdvisor

TEST(PlanAdvisorTest, RecommendsSerialAboveThreshold) {
  PlanAdvisor::Options o;
  o.serial_threshold = 0.2;
  o.min_samples = 10;
  PlanAdvisor advisor(o);
  for (int i = 0; i < 100; ++i) advisor.RecordOutcome(1, i % 2 == 0);
  EXPECT_TRUE(advisor.RecommendSerial(1)) << "50% abort rate";
  EXPECT_NEAR(advisor.AbortRate(1), 0.5, 0.01);
  EXPECT_FALSE(advisor.RecommendSerial(2)) << "unknown type defaults parallel";
}

TEST(PlanAdvisorTest, StaysParallelBelowThreshold) {
  PlanAdvisor::Options o;
  o.serial_threshold = 0.2;
  o.min_samples = 10;
  PlanAdvisor advisor(o);
  for (int i = 0; i < 100; ++i) advisor.RecordOutcome(1, i % 20 == 0);
  EXPECT_FALSE(advisor.RecommendSerial(1)) << "5% abort rate";
}

// -------------------------------------------------------- ResourceManager

TEST_F(DoraEngineTest, ResourceManagerRebalancesSkewedLoad) {
  ResourceManager::Options o;
  o.auto_rebalance = true;
  o.imbalance_threshold = 1.5;
  ResourceManager rm(engine_.get(), o);
  // All load on executor 1's range.
  for (int i = 0; i < 400; ++i) {
    auto dtxn = engine_->BeginTxn();
    FlowGraph g;
    g.AddPhase().AddAction(table_a_, 90, LocalMode::kS,
                           [](ActionEnv&) { return Status::OK(); });
    ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  }
  rm.SampleOnce();  // baseline sample
  for (int i = 0; i < 400; ++i) {
    auto dtxn = engine_->BeginTxn();
    FlowGraph g;
    g.AddPhase().AddAction(table_a_, 90, LocalMode::kS,
                           [](ActionEnv&) { return Status::OK(); });
    ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  }
  rm.SampleOnce();  // sees the skew, triggers a rebalance
  EXPECT_GE(rm.rebalances(), 1u);
  // The hot value should now map to a wider range owned by executor 1 —
  // i.e. the boundary moved left of the default 50.
  auto rule = engine_->routing_of(table_a_)->Current();
  ASSERT_EQ(rule->boundaries.size(), 1u);
  EXPECT_LT(rule->boundaries[0], 50u);
}

}  // namespace
}  // namespace doradb
}  // namespace dora
