// Tests for the centralized hierarchical lock manager: mode lattice,
// grant/wait/upgrade protocol, FIFO fairness, intention locks, deadlock
// detection, and multi-threaded stress.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lock/lock_manager.h"
#include "txn/transaction.h"

namespace doradb {
namespace {

// ------------------------------------------------------------------ LockMode

TEST(LockModeTest, CompatibilityMatrix) {
  using M = LockMode;
  // The classic granularity-of-locks matrix.
  EXPECT_TRUE(Compatible(M::kIS, M::kIS));
  EXPECT_TRUE(Compatible(M::kIS, M::kIX));
  EXPECT_TRUE(Compatible(M::kIS, M::kS));
  EXPECT_TRUE(Compatible(M::kIS, M::kSIX));
  EXPECT_FALSE(Compatible(M::kIS, M::kX));
  EXPECT_TRUE(Compatible(M::kIX, M::kIX));
  EXPECT_FALSE(Compatible(M::kIX, M::kS));
  EXPECT_FALSE(Compatible(M::kIX, M::kSIX));
  EXPECT_FALSE(Compatible(M::kIX, M::kX));
  EXPECT_TRUE(Compatible(M::kS, M::kS));
  EXPECT_FALSE(Compatible(M::kS, M::kSIX));
  EXPECT_FALSE(Compatible(M::kS, M::kX));
  EXPECT_FALSE(Compatible(M::kSIX, M::kSIX));
  EXPECT_FALSE(Compatible(M::kX, M::kX));
}

TEST(LockModeTest, CompatibilityIsSymmetric) {
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      EXPECT_EQ(Compatible(LockMode(a), LockMode(b)),
                Compatible(LockMode(b), LockMode(a)))
          << a << "," << b;
    }
  }
}

TEST(LockModeTest, SupremumLattice) {
  using M = LockMode;
  EXPECT_EQ(Supremum(M::kIS, M::kIX), M::kIX);
  EXPECT_EQ(Supremum(M::kS, M::kIX), M::kSIX);
  EXPECT_EQ(Supremum(M::kIX, M::kS), M::kSIX);
  EXPECT_EQ(Supremum(M::kS, M::kS), M::kS);
  EXPECT_EQ(Supremum(M::kSIX, M::kS), M::kSIX);
  EXPECT_EQ(Supremum(M::kX, M::kIS), M::kX);
}

TEST(LockModeTest, SupremumCoversBothArguments) {
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      const LockMode s = Supremum(LockMode(a), LockMode(b));
      EXPECT_TRUE(Covers(s, LockMode(a)));
      EXPECT_TRUE(Covers(s, LockMode(b)));
    }
  }
}

TEST(LockModeTest, IntentionFor) {
  EXPECT_EQ(IntentionFor(LockMode::kS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kIS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kIX), LockMode::kIX);
}

// --------------------------------------------------------------- LockManager

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : lm_(FastOptions()) {}

  static LockManager::Options FastOptions() {
    LockManager::Options o;
    o.wait_timeout_us = 300000;  // 300ms backstop for tests
    o.detect_interval_us = 200;
    return o;
  }

  std::unique_ptr<Transaction> MakeTxn(TxnId id) {
    auto t = std::make_unique<Transaction>(id);
    lm_.RegisterTxn(t.get());
    return t;
  }

  void Finish(Transaction* t) {
    lm_.ReleaseAll(t);
    lm_.UnregisterTxn(t->id());
  }

  LockManager lm_;
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  const LockId id = LockId::Row(0, Rid{1, 1});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(t2.get(), id, LockMode::kS).ok());
  EXPECT_EQ(lm_.GroupModeOf(id), LockMode::kS);
  Finish(t1.get());
  Finish(t2.get());
  EXPECT_EQ(lm_.GroupModeOf(id), LockMode::kNL);
}

TEST_F(LockManagerTest, ExclusiveBlocksShared) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  const LockId id = LockId::Row(0, Rid{1, 1});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kX).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    lm_.RegisterTxn(t2.get());
    const Status s = lm_.Lock(t2.get(), id, LockMode::kS);
    granted = s.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load()) << "S must wait for X";
  Finish(t1.get());
  waiter.join();
  EXPECT_TRUE(granted.load()) << "release must wake the waiter";
  Finish(t2.get());
}

TEST_F(LockManagerTest, ReentrantAcquireIsCheap) {
  auto t1 = MakeTxn(1);
  const LockId id = LockId::Table(3);
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kIX).ok());
  const uint64_t before = lm_.acquires();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kIX).ok());
  }
  EXPECT_EQ(lm_.acquires(), before) << "covered re-acquires skip the manager";
  Finish(t1.get());
}

TEST_F(LockManagerTest, UpgradeSToX) {
  auto t1 = MakeTxn(1);
  const LockId id = LockId::Row(0, Rid{2, 2});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kX).ok());
  EXPECT_EQ(lm_.GroupModeOf(id), LockMode::kX);
  EXPECT_EQ(t1->held_count(), 1u) << "upgrade reuses the request";
  Finish(t1.get());
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherReaders) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  const LockId id = LockId::Row(0, Rid{2, 2});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(t2.get(), id, LockMode::kS).ok());
  std::atomic<bool> upgraded{false};
  std::thread up([&] {
    upgraded = lm_.Lock(t1.get(), id, LockMode::kX).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(upgraded.load());
  Finish(t2.get());
  up.join();
  EXPECT_TRUE(upgraded.load());
  Finish(t1.get());
}

TEST_F(LockManagerTest, FifoFairnessNoWriterStarvation) {
  // S held; X waits; a later S must queue behind the X (FIFO barrier), so
  // after the first S releases, X gets the lock before the late S.
  auto t1 = MakeTxn(1), t2 = MakeTxn(2), t3 = MakeTxn(3);
  const LockId id = LockId::Row(0, Rid{5, 5});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kS).ok());

  std::atomic<bool> x_granted{false}, s_granted{false};
  std::thread xw([&] { x_granted = lm_.Lock(t2.get(), id, LockMode::kX).ok(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread sw([&] { s_granted = lm_.Lock(t3.get(), id, LockMode::kS).ok(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(x_granted.load());
  EXPECT_FALSE(s_granted.load()) << "late S must not jump the X waiter";

  Finish(t1.get());
  xw.join();
  EXPECT_TRUE(x_granted.load());
  EXPECT_FALSE(s_granted.load());
  Finish(t2.get());
  sw.join();
  EXPECT_TRUE(s_granted.load());
  Finish(t3.get());
}

TEST_F(LockManagerTest, RowLockAcquiresTableIntent) {
  auto t1 = MakeTxn(1);
  ASSERT_TRUE(lm_.LockRow(t1.get(), 7, Rid{1, 0}, LockMode::kX).ok());
  EXPECT_EQ(lm_.GroupModeOf(LockId::Table(7)), LockMode::kIX);
  EXPECT_EQ(lm_.GroupModeOf(LockId::Row(7, Rid{1, 0})), LockMode::kX);
  // Two locks held: table IX + row X.
  EXPECT_EQ(t1->held_count(), 2u);
  Finish(t1.get());
}

TEST_F(LockManagerTest, IntentLocksDoNotConflictAcrossRows) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  ASSERT_TRUE(lm_.LockRow(t1.get(), 7, Rid{1, 0}, LockMode::kX).ok());
  ASSERT_TRUE(lm_.LockRow(t2.get(), 7, Rid{2, 0}, LockMode::kX).ok());
  EXPECT_EQ(lm_.GroupModeOf(LockId::Table(7)), LockMode::kIX);
  Finish(t1.get());
  Finish(t2.get());
}

TEST_F(LockManagerTest, TableSLockBlocksRowWriter) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  ASSERT_TRUE(lm_.LockTable(t1.get(), 7, LockMode::kS).ok());
  std::atomic<bool> granted{false};
  std::thread w([&] {
    granted = lm_.LockRow(t2.get(), 7, Rid{1, 0}, LockMode::kX).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load()) << "IX on table must wait for table S";
  Finish(t1.get());
  w.join();
  EXPECT_TRUE(granted.load());
  Finish(t2.get());
}

TEST_F(LockManagerTest, DeadlockDetectedAndVictimAborts) {
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  const LockId a = LockId::Row(0, Rid{10, 0});
  const LockId b = LockId::Row(0, Rid{20, 0});
  ASSERT_TRUE(lm_.Lock(t1.get(), a, LockMode::kX).ok());
  ASSERT_TRUE(lm_.Lock(t2.get(), b, LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::atomic<int> grants{0};
  std::thread w1([&] {
    const Status s = lm_.Lock(t1.get(), b, LockMode::kX);
    if (s.IsDeadlock()) {
      deadlocks++;
      Finish(t1.get());  // victim aborts, releasing `a`
    } else if (s.ok()) {
      grants++;
    }
  });
  std::thread w2([&] {
    const Status s = lm_.Lock(t2.get(), a, LockMode::kX);
    if (s.IsDeadlock()) {
      deadlocks++;
      Finish(t2.get());
    } else if (s.ok()) {
      grants++;
    }
  });
  w1.join();
  w2.join();
  EXPECT_GE(deadlocks.load(), 1) << "at least one txn must be the victim";
  EXPECT_GE(lm_.detector().cycles_found() + lm_.timeouts(), 1u);
  // Clean up whichever transaction survived.
  if (t1->held_count() != 0) Finish(t1.get());
  if (t2->held_count() != 0) Finish(t2.get());
}

TEST_F(LockManagerTest, ConversionDeadlockDetected) {
  // Both hold S, both want X: a conversion deadlock.
  auto t1 = MakeTxn(1), t2 = MakeTxn(2);
  const LockId id = LockId::Row(0, Rid{9, 9});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(t2.get(), id, LockMode::kS).ok());
  std::atomic<int> failures{0};
  auto upgrade = [&](Transaction* t) {
    const Status s = lm_.Lock(t, id, LockMode::kX);
    if (!s.ok()) {
      failures++;
      Finish(t);
    }
  };
  std::thread u1([&] { upgrade(t1.get()); });
  std::thread u2([&] { upgrade(t2.get()); });
  u1.join();
  u2.join();
  EXPECT_GE(failures.load(), 1);
  if (t1->held_count() != 0) Finish(t1.get());
  if (t2->held_count() != 0) Finish(t2.get());
}

TEST_F(LockManagerTest, ReleaseAllClearsEverything) {
  auto t1 = MakeTxn(1);
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(lm_.LockRow(t1.get(), 1, Rid{i, 0}, LockMode::kX).ok());
  }
  EXPECT_EQ(t1->held_count(), 51u);  // 50 rows + 1 table IX
  Finish(t1.get());
  EXPECT_EQ(t1->held_count(), 0u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(lm_.GroupModeOf(LockId::Row(1, Rid{i, 0})), LockMode::kNL);
  }
}

TEST_F(LockManagerTest, LockCountersByClass) {
  ThreadStats::Local().Flush();
  const StatsSnapshot before = ThreadStats::Local().Snapshot();
  auto t1 = MakeTxn(1);
  ASSERT_TRUE(lm_.LockRow(t1.get(), 1, Rid{1, 0}, LockMode::kX).ok());
  ASSERT_TRUE(lm_.LockRow(t1.get(), 1, Rid{2, 0}, LockMode::kX).ok());
  const StatsSnapshot delta = ThreadStats::Local().Snapshot() - before;
  EXPECT_EQ(delta.Locks(LockCounter::kRowLevel), 2u);
  EXPECT_EQ(delta.Locks(LockCounter::kHigherLevel), 1u)
      << "table intent acquired once, then cached";
  Finish(t1.get());
}

TEST_F(LockManagerTest, StressManyThreadsDisjointRows) {
  constexpr int kThreads = 8, kIters = 300;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Transaction txn(1000 + t * kIters + i);
        lm_.RegisterTxn(&txn);
        // Each thread locks its own rows: no logical conflicts, pure
        // latch-path exercise.
        for (uint32_t r = 0; r < 4; ++r) {
          if (!lm_.LockRow(&txn, 1, Rid{uint32_t(t * 1000 + r), 0},
                           LockMode::kX).ok()) {
            errors++;
          }
        }
        lm_.ReleaseAll(&txn);
        lm_.UnregisterTxn(txn.id());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(LockManagerTest, StressContendedRowSerializes) {
  constexpr int kThreads = 8, kIters = 200;
  int64_t counter = 0;  // protected by the X lock below
  std::atomic<int> aborts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Transaction txn(5000 + t * kIters + i);
        lm_.RegisterTxn(&txn);
        const Status s = lm_.LockRow(&txn, 2, Rid{42, 0}, LockMode::kX);
        if (s.ok()) {
          counter++;  // data race iff mutual exclusion is broken
        } else {
          aborts++;
        }
        lm_.ReleaseAll(&txn);
        lm_.UnregisterTxn(txn.id());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter + aborts.load(), kThreads * kIters);
}

TEST_F(LockManagerTest, HeadsAreReapedWhenIdle) {
  auto t1 = MakeTxn(1);
  const LockId id = LockId::Row(3, Rid{123, 4});
  ASSERT_TRUE(lm_.Lock(t1.get(), id, LockMode::kX).ok());
  Finish(t1.get());
  // After release the head should be gone; GroupModeOf sees no head.
  EXPECT_EQ(lm_.GroupModeOf(id), LockMode::kNL);
  // Re-acquiring works (head recreated, possibly from the free list).
  auto t2 = MakeTxn(2);
  ASSERT_TRUE(lm_.Lock(t2.get(), id, LockMode::kS).ok());
  Finish(t2.get());
}

}  // namespace
}  // namespace doradb
