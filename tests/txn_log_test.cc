// Transaction protocol + WAL + restart-recovery tests: commit durability,
// abort rollback (heap and index), ghost deletes, CLRs, crash recovery with
// winners and losers, and log-record serialization.

#include <thread>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "log/recovery.h"
#include "storage/btree.h"

namespace doradb {
namespace {

LogManager::Options SyncLog() {
  LogManager::Options o;
  o.synchronous = false;
  o.flush_interval_us = 20;
  return o;
}

Database::Options SmallDb() {
  Database::Options o;
  o.buffer_frames = 512;
  o.log = SyncLog();
  o.lock.wait_timeout_us = 300000;
  return o;
}

// ------------------------------------------------------------ log records

TEST(LogRecordTest, SerializeRoundTrip) {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.txn = 42;
  rec.lsn = 1000;
  rec.prev_lsn = 900;
  rec.table = 3;
  rec.rid = Rid{7, 9};
  rec.before = "old-image";
  rec.after = "new-image";
  rec.undo_next = 800;
  std::vector<uint8_t> buf;
  rec.SerializeTo(&buf);

  size_t off = 0;
  LogRecord out;
  ASSERT_TRUE(LogRecord::DeserializeFrom(buf, &off, &out));
  EXPECT_EQ(out.type, LogType::kUpdate);
  EXPECT_EQ(out.txn, 42u);
  EXPECT_EQ(out.lsn, 1000u);
  EXPECT_EQ(out.prev_lsn, 900u);
  EXPECT_EQ(out.table, 3);
  EXPECT_EQ(out.rid, (Rid{7, 9}));
  EXPECT_EQ(out.before, "old-image");
  EXPECT_EQ(out.after, "new-image");
  EXPECT_EQ(out.undo_next, 800u);
  EXPECT_EQ(off, buf.size());
}

TEST(LogRecordTest, TornTailRejected) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.after = std::string(100, 'x');
  std::vector<uint8_t> buf;
  rec.SerializeTo(&buf);
  buf.resize(buf.size() - 10);  // simulate a torn write
  size_t off = 0;
  LogRecord out;
  EXPECT_FALSE(LogRecord::DeserializeFrom(buf, &off, &out));
}

TEST(LogRecordTest, CheckpointCarriesActiveTxns) {
  LogRecord rec;
  rec.type = LogType::kCheckpoint;
  rec.active_txns = {1, 5, 9};
  std::vector<uint8_t> buf;
  rec.SerializeTo(&buf);
  size_t off = 0;
  LogRecord out;
  ASSERT_TRUE(LogRecord::DeserializeFrom(buf, &off, &out));
  EXPECT_EQ(out.active_txns, (std::vector<TxnId>{1, 5, 9}));
}

// ------------------------------------------------------------ log manager

TEST(LogManagerTest, AppendAssignsMonotoneLsns) {
  LogManager log{SyncLog()};
  LogRecord a, b;
  a.type = b.type = LogType::kBegin;
  log.Append(&a);
  log.Append(&b);
  EXPECT_LT(a.lsn, b.lsn);
}

TEST(LogManagerTest, WaitFlushedMakesDurable) {
  LogManager log{SyncLog()};
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = 1;
  const Lsn end = log.Append(&rec);
  log.WaitFlushed(end);
  EXPECT_GE(log.flushed_lsn(), end);
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, LogType::kCommit);
}

TEST(LogManagerTest, DiscardVolatileTailLosesUnflushed) {
  LogManager::Options o;
  o.flush_interval_us = 1000000;  // effectively never auto-flush
  LogManager log{o};
  LogRecord a;
  a.type = LogType::kBegin;
  a.txn = 1;
  const Lsn end = log.Append(&a);
  log.WaitFlushed(end);  // force a flush: record a is stable
  LogRecord b;
  b.type = LogType::kCommit;
  b.txn = 1;
  log.Append(&b);  // NOT flushed
  log.DiscardVolatileTail();
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, LogType::kBegin);
}

TEST(LogManagerTest, ConcurrentAppendersKeepRecordsIntact) {
  LogManager log{SyncLog()};
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec;
        rec.type = LogType::kUpdate;
        rec.txn = static_cast<TxnId>(t + 1);
        rec.after = std::string(16, static_cast<char>('a' + t));
        log.Append(&rec);
      }
    });
  }
  for (auto& t : threads) t.join();
  log.FlushTo(log.current_lsn());
  const auto recs = log.ReadStable();
  EXPECT_EQ(recs.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const auto& r : recs) {
    ASSERT_EQ(r.after.size(), 16u);
    EXPECT_EQ(r.after[0], static_cast<char>('a' + (r.txn - 1)));
  }
}

// ----------------------------------------------------------- transactions

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : db_(SmallDb()) {
    EXPECT_TRUE(db_.catalog()->CreateTable("t", &table_).ok());
    EXPECT_TRUE(
        db_.catalog()->CreateIndex(table_, "t_pk", true, false, &index_).ok());
  }

  static std::string Key(uint64_t k) {
    KeyBuilder kb;
    kb.Add64(k);
    return kb.Str();
  }

  Database db_;
  TableId table_;
  IndexId index_;
};

TEST_F(TxnTest, CommitMakesChangesVisible) {
  auto txn = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(txn.get(), table_, "hello", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(txn.get()).ok());

  auto txn2 = db_.Begin();
  std::string out;
  ASSERT_TRUE(db_.Read(txn2.get(), table_, rid, &out,
                       AccessOptions::Baseline()).ok());
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(db_.Commit(txn2.get()).ok());
}

TEST_F(TxnTest, AbortRollsBackInsert) {
  auto txn = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(txn.get(), table_, "ghost", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Abort(txn.get()).ok());
  std::string out;
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).IsNotFound());
}

TEST_F(TxnTest, AbortRollsBackUpdate) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "v1", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Update(txn.get(), table_, rid, "v2",
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Abort(txn.get()).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  EXPECT_EQ(out, "v1");
}

TEST_F(TxnTest, DeleteIsGhostUntilCommit) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "victim", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Delete(txn.get(), table_, rid,
                         AccessOptions::Baseline()).ok());
  // The slot is still physically occupied (ghost) until commit.
  std::string out;
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  ASSERT_TRUE(db_.Commit(txn.get()).ok());
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).IsNotFound());
}

TEST_F(TxnTest, AbortedDeleteKeepsRecord) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "survivor", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Delete(txn.get(), table_, rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Abort(txn.get()).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  EXPECT_EQ(out, "survivor");
}

TEST_F(TxnTest, AbortRestoresIndexState) {
  auto txn = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(txn.get(), table_, "rec", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.IndexInsert(txn.get(), index_, Key(1),
                              IndexEntry{rid, 0, false}).ok());
  ASSERT_TRUE(db_.Abort(txn.get()).ok());
  IndexEntry out;
  EXPECT_TRUE(db_.catalog()->Index(index_)->Probe(Key(1), &out).IsNotFound());
}

TEST_F(TxnTest, AbortRestoresRemovedIndexEntry) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "rec", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.IndexInsert(setup.get(), index_, Key(5),
                              IndexEntry{rid, 77, false}).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(db_.IndexRemove(txn.get(), index_, Key(5), rid, 77).ok());
  ASSERT_TRUE(db_.Abort(txn.get()).ok());
  IndexEntry out;
  ASSERT_TRUE(db_.catalog()->Index(index_)->Probe(Key(5), &out).ok());
  EXPECT_EQ(out.aux, 77u);
}

TEST_F(TxnTest, TwoTxnsConflictOnRow) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "x", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto t1 = db_.Begin();
  ASSERT_TRUE(db_.Update(t1.get(), table_, rid, "y",
                         AccessOptions::Baseline()).ok());
  auto t2 = db_.Begin();
  std::string out;
  // t2's read must wait for t1; with the short timeout it fails instead.
  const Status s = db_.Read(t2.get(), table_, rid, &out,
                            AccessOptions::Baseline());
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(db_.Abort(t2.get()).ok());
  ASSERT_TRUE(db_.Commit(t1.get()).ok());
}

TEST_F(TxnTest, NoCcAccessSkipsLockManager) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "x", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  const uint64_t acq_before = db_.lock_manager()->acquires();
  auto txn = db_.Begin();
  std::string out;
  ASSERT_TRUE(
      db_.Read(txn.get(), table_, rid, &out, AccessOptions::NoCc()).ok());
  ASSERT_TRUE(db_.Update(txn.get(), table_, rid, "z",
                         AccessOptions::NoCc()).ok());
  EXPECT_EQ(db_.lock_manager()->acquires(), acq_before)
      << "DORA-style no-CC access must not touch the lock manager";
  ASSERT_TRUE(db_.Commit(txn.get()).ok());
}

// ---------------------------------------------------------------- recovery

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : db_(SmallDb()) {
    EXPECT_TRUE(db_.catalog()->CreateTable("t", &table_).ok());
  }

  Database db_;
  TableId table_;
};

TEST_F(RecoveryTest, CommittedSurviveCrash) {
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    auto txn = db_.Begin();
    Rid rid;
    ASSERT_TRUE(db_.Insert(txn.get(), table_, "rec" + std::to_string(i),
                           &rid, AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db_.Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  for (int i = 0; i < 50; ++i) {
    std::string out;
    ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "rec" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, UncommittedRolledBackOnRestart) {
  auto setup = db_.Begin();
  Rid stable_rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "stable", &stable_rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  // A loser: updates the stable record and inserts another, then "crashes"
  // with the log flushed but no commit record.
  auto loser = db_.Begin();
  ASSERT_TRUE(db_.Update(loser.get(), table_, stable_rid, "dirty!",
                         AccessOptions::Baseline()).ok());
  Rid loser_rid;
  ASSERT_TRUE(db_.Insert(loser.get(), table_, "loser-insert", &loser_rid,
                         AccessOptions::Baseline()).ok());
  db_.log_manager()->FlushTo(db_.log_manager()->current_lsn());
  db_.SimulateCrash();

  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(stable_rid, &out).ok());
  EXPECT_EQ(out, "stable") << "loser update must be undone";
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(loser_rid, &out).IsNotFound())
      << "loser insert must be removed";
}

TEST_F(RecoveryTest, CommittedDeleteRedone) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "bye", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());
  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Delete(txn.get(), table_, rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(txn.get()).ok());
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).IsNotFound());
}

TEST_F(RecoveryTest, UncommittedDeleteNotApplied) {
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "keep", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());
  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Delete(txn.get(), table_, rid,
                         AccessOptions::Baseline()).ok());
  db_.log_manager()->FlushTo(db_.log_manager()->current_lsn());
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  EXPECT_EQ(out, "keep");
}

TEST_F(RecoveryTest, UnflushedCommitIsLost) {
  // A commit whose record never reached the stable log is a loser — this is
  // exactly what group commit's flush-before-ack prevents; here we bypass
  // the wait by writing directly and crashing.
  auto setup = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "base", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  auto txn = db_.Begin();
  ASSERT_TRUE(db_.Update(txn.get(), table_, rid, "newer",
                         AccessOptions::Baseline()).ok());
  // Flush the update but NOT any commit record; then crash.
  db_.log_manager()->FlushTo(db_.log_manager()->current_lsn());
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  EXPECT_EQ(out, "base");
}

TEST_F(RecoveryTest, IndexRebuiltViaCallback) {
  IndexId index;
  ASSERT_TRUE(
      db_.catalog()->CreateIndex(table_, "pk", true, false, &index).ok());
  auto txn = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(txn.get(), table_, "k1-record", &rid,
                         AccessOptions::Baseline()).ok());
  KeyBuilder kb;
  kb.Add64(1);
  ASSERT_TRUE(db_.IndexInsert(txn.get(), index, kb.View(),
                              IndexEntry{rid, 0, false}).ok());
  ASSERT_TRUE(db_.Commit(txn.get()).ok());
  db_.SimulateCrash();

  bool rebuilt = false;
  ASSERT_TRUE(db_.Recover([&](Database* db) -> Status {
    // Schema-aware rebuild: re-key every heap record (key 1 here).
    rebuilt = true;
    return db->catalog()->Heap(table_)->Scan(
        [&](const Rid& r, std::string_view) {
          KeyBuilder kb2;
          kb2.Add64(1);
          // A rebuilt index starts empty in a real restart; here the old
          // in-memory tree persists, so just verify the heap is intact.
          return true;
        });
  }).ok());
  EXPECT_TRUE(rebuilt);
}

TEST_F(RecoveryTest, RepeatedCrashRecoverIsIdempotent) {
  std::vector<Rid> rids;
  for (int i = 0; i < 20; ++i) {
    auto txn = db_.Begin();
    Rid rid;
    ASSERT_TRUE(db_.Insert(txn.get(), table_, "r" + std::to_string(i), &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db_.Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  for (int round = 0; round < 3; ++round) {
    db_.SimulateCrash();
    ASSERT_TRUE(db_.Recover(nullptr).ok());
  }
  for (int i = 0; i < 20; ++i) {
    std::string out;
    ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "r" + std::to_string(i));
  }
  EXPECT_EQ(db_.catalog()->Heap(table_)->record_count(), 20u);
}

TEST_F(RecoveryTest, CheckpointThenCrash) {
  auto txn = db_.Begin();
  Rid rid;
  ASSERT_TRUE(db_.Insert(txn.get(), table_, "ckpt", &rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(txn.get()).ok());
  ASSERT_TRUE(db_.Checkpoint().ok());
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rid, &out).ok());
  EXPECT_EQ(out, "ckpt");
}

}  // namespace
}  // namespace doradb
