// Durable self-describing catalog (storage/catalog_store.h): wire codec,
// write-through DDL, self-contained reopen (no application schema
// re-creation on either WAL backend), spec-driven index rebuild, DORA
// rewiring from recovered metadata, and named rejection of corrupt or
// version-mismatched catalog files.

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "log/recovery.h"
#include "storage/catalog_store.h"
#include "util/rng.h"
#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace {

std::string TempDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_catalog_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key64(uint64_t v) {
  KeyBuilder kb;
  kb.Add64(v);
  return kb.Str();
}

Database::Options DurableOpts(const std::string& dir,
                              LogBackendKind backend, uint32_t parts = 2) {
  Database::Options o;
  o.buffer_frames = 512;
  o.log_backend = backend;
  o.log_partitions = parts;
  o.log.flush_interval_us = 20;
  o.lock.wait_timeout_us = 300000;
  o.data_dir = dir;
  o.log_segment_bytes = 4096;
  return o;
}

// ------------------------------------------------------------ wire codec

TEST(CatalogStoreTest, ImageRoundTripsThroughSerialization) {
  CatalogImage img;
  img.tables.push_back(CatalogImage::Table{0, "accounts", 1001, 4});
  img.tables.push_back(CatalogImage::Table{1, "history", 0, 0});
  CatalogImage::Index pk;
  pk.id = 0;
  pk.name = "accounts_pk";
  pk.table_id = 0;
  pk.unique = true;
  pk.secondary = false;
  pk.key_spec = IndexKeySpec::U64At(0, 8);
  img.indexes.push_back(pk);
  CatalogImage::Index sec;
  sec.id = 1;
  sec.name = "accounts_name";
  sec.table_id = 0;
  sec.unique = false;
  sec.secondary = true;
  sec.key_spec = IndexKeySpec{}.Uint(4, 4).Bytes(16, 15).Aux(0, 4);
  img.indexes.push_back(sec);

  std::vector<uint8_t> bytes;
  CatalogStore::Serialize(img, &bytes);
  CatalogImage out;
  ASSERT_TRUE(CatalogStore::Deserialize(bytes, &out).ok());

  ASSERT_EQ(out.tables.size(), 2u);
  EXPECT_EQ(out.tables[0].name, "accounts");
  EXPECT_EQ(out.tables[0].key_space, 1001u);
  EXPECT_EQ(out.tables[0].dora_executors, 4u);
  EXPECT_EQ(out.tables[1].dora_executors, 0u);
  ASSERT_EQ(out.indexes.size(), 2u);
  EXPECT_TRUE(out.indexes[0].unique);
  EXPECT_FALSE(out.indexes[0].secondary);
  ASSERT_EQ(out.indexes[0].key_spec.fields.size(), 1u);
  EXPECT_EQ(out.indexes[0].key_spec.aux_offset, 8u);
  EXPECT_TRUE(out.indexes[1].secondary);
  ASSERT_EQ(out.indexes[1].key_spec.fields.size(), 2u);
  EXPECT_EQ(out.indexes[1].key_spec.fields[1].kind,
            IndexKeyField::Kind::kBytes);
  EXPECT_EQ(out.indexes[1].key_spec.fields[1].width, 15u);
  EXPECT_EQ(out.indexes[1].key_spec.aux_width, 4u);
}

TEST(CatalogStoreTest, DeserializeRejectsBadMagicVersionAndChecksum) {
  CatalogImage img;
  img.tables.push_back(CatalogImage::Table{0, "t", 0, 0});
  std::vector<uint8_t> bytes;
  CatalogStore::Serialize(img, &bytes);

  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    CatalogImage out;
    const Status s = CatalogStore::Deserialize(bad, &out);
    ASSERT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("bad magic"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[8] = 99;  // version field
    CatalogImage out;
    const Status s = CatalogStore::Deserialize(bad, &out);
    ASSERT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("version mismatch"), std::string::npos)
        << s.ToString();
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[CatalogStore::kHeaderSize + 2] ^= 0xFF;  // payload byte
    CatalogImage out;
    const Status s = CatalogStore::Deserialize(bad, &out);
    ASSERT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("checksum mismatch"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + 10);
    CatalogImage out;
    const Status s = CatalogStore::Deserialize(bad, &out);
    ASSERT_TRUE(s.IsCorruption());
    EXPECT_NE(s.ToString().find("truncated"), std::string::npos);
  }
}

TEST(CatalogStoreTest, KeySpecExtractMatchesKeyBuilder) {
  struct Row {
    uint64_t id;
    uint32_t group;
    char name[8];
  };
  Row r{};
  r.id = 0xDEADBEEFCAFEull;
  r.group = 42;
  std::memcpy(r.name, "abc", 3);
  const std::string_view rec(reinterpret_cast<const char*>(&r), sizeof(r));

  IndexKeySpec spec =
      IndexKeySpec{}.Uint(offsetof(Row, id), 8)
          .Uint(offsetof(Row, group), 4)
          .Bytes(offsetof(Row, name), 8)
          .Aux(offsetof(Row, group), 4);
  std::string key;
  uint64_t aux;
  ASSERT_TRUE(spec.Extract(rec, &key, &aux).ok());
  KeyBuilder kb;
  kb.Add64(r.id).Add32(r.group).AddString(std::string_view(r.name, 8), 8);
  EXPECT_EQ(key, kb.Str());
  EXPECT_EQ(aux, 42u);

  // A record shorter than the spec is corruption, not a partial key.
  EXPECT_TRUE(spec.Extract(rec.substr(0, 4), &key, &aux).IsCorruption());
}

TEST(CatalogStoreTest, DdlRejectsSpecsLoadWouldRefuse) {
  // Symmetry contract: any spec CreateIndex accepts must load back; any
  // spec ValidateImage refuses must be refused at DDL time too — or a
  // lifetime could persist a catalog that bricks its own data directory.
  Database db;  // in-memory: pure validation path
  TableId table;
  IndexId index;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());

  IndexKeySpec bad_width = IndexKeySpec{}.Uint(0, 3);
  EXPECT_FALSE(db.catalog()
                  ->CreateIndex(table, "i1", true, false, bad_width, &index)
                  .ok()) << "must be rejected";
  IndexKeySpec too_wide =
      IndexKeySpec{}.Uint(0, 8).Uint(8, 8).Uint(16, 8).Uint(24, 8).Uint(32, 8);
  EXPECT_FALSE(db.catalog()
                  ->CreateIndex(table, "i2", true, false, too_wide, &index)
                  .ok()) << "must be rejected";
  IndexKeySpec bad_aux = IndexKeySpec{}.Uint(0, 8).Aux(8, 9);
  EXPECT_FALSE(db.catalog()
                  ->CreateIndex(table, "i3", true, false, bad_aux, &index)
                  .ok()) << "must be rejected";
  IndexKeySpec zero_bytes = IndexKeySpec{}.Bytes(0, 0);
  EXPECT_FALSE(db.catalog()
                  ->CreateIndex(table, "i4", true, false, zero_bytes, &index)
                  .ok()) << "must be rejected";
  // The boundary case is fine: exactly kMaxKeySize bytes.
  IndexKeySpec max_wide = IndexKeySpec{}.Uint(0, 8).Uint(8, 8)
                              .Uint(16, 8).Uint(24, 8);
  EXPECT_TRUE(db.catalog()
                  ->CreateIndex(table, "i5", true, false, max_wide, &index)
                  .ok());
}

// -------------------------------------------- write-through + reopen

TEST(CatalogTest, DdlWritesThroughBeforeAnyCommit) {
  const std::string dir = TempDataDir("write_through");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kPartitioned);
  TableId table;
  IndexId index;
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    ASSERT_TRUE(db.catalog()
                    ->CreateIndex(table, "t_pk", true, false,
                                  IndexKeySpec::U64At(0), &index)
                    .ok());
    db.SimulateKill();
  }
  // Killed with zero committed transactions and zero checkpoints: the
  // schema alone must still be there — DDL is durable when it returns.
  Database db(opts);
  ASSERT_TRUE(db.catalog_load_status().ok())
      << db.catalog_load_status().ToString();
  ASSERT_EQ(db.catalog()->num_tables(), 1u);
  ASSERT_EQ(db.catalog()->num_indexes(), 1u);
  EXPECT_NE(db.catalog()->GetTable("t"), nullptr);
  IndexInfo* pk = db.catalog()->GetIndex("t_pk");
  ASSERT_NE(pk, nullptr);
  EXPECT_TRUE(pk->unique);
  EXPECT_TRUE(pk->key_spec.CanRebuild());
  ASSERT_TRUE(db.Recover().ok());
}

// Two lifetimes over one data directory, parameterized by WAL backend:
// kill mid-workload, reopen cold, never re-declare the schema.
class SelfContainedReopenTest
    : public ::testing::TestWithParam<LogBackendKind> {};

TEST_P(SelfContainedReopenTest, KilledDatabaseReopensWithoutSchemaSetup) {
  const bool plog = GetParam() == LogBackendKind::kPartitioned;
  const std::string dir = TempDataDir(plog ? "reopen_plog" : "reopen_central");
  Database::Options opts = DurableOpts(dir, GetParam());
  std::vector<Rid> rids;
  {
    Database db(opts);
    TableId table;
    IndexId index;
    ASSERT_TRUE(db.catalog()->CreateTable("accounts", &table).ok());
    // Records carry an 8-byte LE id prefix, declared to the catalog as
    // both the key and the aux payload.
    ASSERT_TRUE(db.catalog()
                    ->CreateIndex(table, "accounts_pk", true, false,
                                  IndexKeySpec::U64At(0, 0), &index)
                    .ok());
    for (uint64_t i = 0; i < 40; ++i) {
      if (plog) {
        db.log_manager()->BindThisThread(static_cast<uint32_t>(i));
      }
      auto txn = db.Begin();
      std::string rec(16, '\0');
      std::memcpy(rec.data(), &i, 8);
      std::memcpy(rec.data() + 8, "payload!", 8);
      Rid rid;
      ASSERT_TRUE(db.Insert(txn.get(), table, rec, &rid,
                            AccessOptions::Baseline()).ok());
      ASSERT_TRUE(db.IndexInsert(txn.get(), index, Key64(i),
                                 IndexEntry{rid, i, false}).ok());
      ASSERT_TRUE(db.Commit(txn.get()).ok());
      rids.push_back(rid);
      if (i == 20) {
        ASSERT_TRUE(db.CheckpointPartition(0).ok());  // truncation mid-run
      }
    }
    db.SimulateKill();
  }

  // Second lifetime: a process that knows NOTHING about the schema.
  Database db(opts);
  ASSERT_TRUE(db.catalog_load_status().ok())
      << db.catalog_load_status().ToString();
  ASSERT_EQ(db.catalog()->num_tables(), 1u);
  ASSERT_EQ(db.catalog()->num_indexes(), 1u);
  TableInfo* t = db.catalog()->GetTable("accounts");
  ASSERT_NE(t, nullptr);
  IndexInfo* pk = db.catalog()->GetIndex("accounts_pk");
  ASSERT_NE(pk, nullptr);
  EXPECT_TRUE(pk->unique);
  ASSERT_TRUE(db.Recover().ok());  // no rebuild callback either

  EXPECT_EQ(db.catalog()->Heap(t->id)->record_count(), 40u);
  for (uint64_t i = 0; i < 40; ++i) {
    // The persisted key spec rebuilt the index: probe by key, then match
    // the heap row.
    IndexEntry e;
    ASSERT_TRUE(db.catalog()->Index(pk->id)->Probe(Key64(i), &e).ok())
        << "key " << i;
    EXPECT_EQ(e.aux, i);
    std::string rec;
    ASSERT_TRUE(db.catalog()->Heap(t->id)->Get(e.rid, &rec).ok());
    uint64_t stored;
    std::memcpy(&stored, rec.data(), 8);
    EXPECT_EQ(stored, i);
  }

  // The reopened lifetime keeps working — including further DDL, which
  // writes through to the same catalog file.
  auto txn = db.Begin();
  Rid rid;
  std::string rec(16, 'x');
  ASSERT_TRUE(
      db.Insert(txn.get(), t->id, rec, &rid, AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());
  TableId extra;
  ASSERT_TRUE(db.catalog()->CreateTable("extra", &extra).ok());
  EXPECT_EQ(extra, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SelfContainedReopenTest,
                         ::testing::Values(LogBackendKind::kPartitioned,
                                           LogBackendKind::kCentral));

// Kill-loop: several kill/reopen cycles, schema declared exactly once in
// the first lifetime, every later lifetime fully self-contained.
class SelfContainedKillLoopTest
    : public ::testing::TestWithParam<LogBackendKind> {};

TEST_P(SelfContainedKillLoopTest, CommittedStateSurvivesEveryLifetime) {
  const bool plog = GetParam() == LogBackendKind::kPartitioned;
  const std::string dir =
      TempDataDir(plog ? "kill_loop_plog" : "kill_loop_central");
  Database::Options opts = DurableOpts(dir, GetParam(), /*parts=*/4);
  constexpr int kRows = 8;
  constexpr int kRounds = 4;
  Rng rng(7);

  std::vector<uint64_t> committed(kRows, 0);  // model: last committed value
  {
    Database db(opts);
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("counters", &table).ok());
    auto setup = db.Begin();
    for (int r = 0; r < kRows; ++r) {
      Rid rid;
      std::string rec(16, '\0');
      const uint64_t row = static_cast<uint64_t>(r);
      std::memcpy(rec.data(), &row, 8);
      ASSERT_TRUE(db.Insert(setup.get(), table, rec, &rid,
                            AccessOptions::Baseline()).ok());
    }
    ASSERT_TRUE(db.Commit(setup.get()).ok());
    db.SimulateKill();
  }

  for (int round = 0; round < kRounds; ++round) {
    Database db(opts);
    ASSERT_TRUE(db.catalog_load_status().ok()) << "round " << round;
    TableInfo* t = db.catalog()->GetTable("counters");
    ASSERT_NE(t, nullptr) << "round " << round;
    ASSERT_TRUE(db.Recover().ok()) << "round " << round;

    // Verify every committed value, via a full scan keyed by the row id.
    std::vector<uint64_t> seen(kRows, ~0ull);
    std::vector<Rid> row_rids(kRows);
    ASSERT_TRUE(db.catalog()
                    ->Heap(t->id)
                    ->Scan([&](const Rid& rid, std::string_view rec) {
                      uint64_t row, val;
                      std::memcpy(&row, rec.data(), 8);
                      std::memcpy(&val, rec.data() + 8, 8);
                      seen[row] = val;
                      row_rids[row] = rid;
                      return true;
                    })
                    .ok());
    for (int r = 0; r < kRows; ++r) {
      EXPECT_EQ(seen[r], committed[r]) << "round " << round << " row " << r;
    }

    // More committed updates (scattered across partitions for plog), an
    // uncommitted loser, a mid-round checkpoint, then die again.
    for (int i = 0; i < 20; ++i) {
      const int r = static_cast<int>(
          rng.UniformInt(uint64_t{0}, uint64_t{kRows - 1}));
      if (plog) {
        db.log_manager()->BindThisThread(static_cast<uint32_t>(
            rng.UniformInt(uint64_t{0}, uint64_t{3})));
      }
      auto txn = db.Begin();
      std::string rec(16, '\0');
      const uint64_t row = static_cast<uint64_t>(r);
      const uint64_t val = committed[r] + 1;
      std::memcpy(rec.data(), &row, 8);
      std::memcpy(rec.data() + 8, &val, 8);
      ASSERT_TRUE(db.Update(txn.get(), t->id, row_rids[r], rec,
                            AccessOptions::Baseline()).ok());
      ASSERT_TRUE(db.Commit(txn.get()).ok());
      committed[r] = val;
      if (i == 10 && rng.Percent(60)) {
        ASSERT_TRUE(db.CheckpointPartition(static_cast<uint32_t>(
            rng.UniformInt(uint64_t{0}, uint64_t{3}))).ok());
      }
    }
    {
      auto loser = db.Begin();
      std::string rec(16, '\7');
      ASSERT_TRUE(db.Update(loser.get(), t->id, row_rids[0], rec,
                            AccessOptions::Baseline()).ok());
      db.log_manager()->FlushTo(db.log_manager()->current_lsn());
      // Never committed: the next lifetime must roll it back.
    }
    db.SimulateKill();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, SelfContainedKillLoopTest,
                         ::testing::Values(LogBackendKind::kPartitioned,
                                           LogBackendKind::kCentral));

// ------------------------------------- corruption / version rejection

TEST(CatalogTest, CorruptedCatalogFailsReopenWithNamedError) {
  const std::string dir = TempDataDir("corrupt");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kPartitioned);
  {
    Database db(opts);
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    db.SimulateKill();
  }
  // Flip one payload byte of catalog.db.
  const std::string path = dir + "/catalog.db";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(CatalogStore::kHeaderSize + 1));
    char b;
    f.seekg(static_cast<std::streamoff>(CatalogStore::kHeaderSize + 1));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xFF);
    f.seekp(static_cast<std::streamoff>(CatalogStore::kHeaderSize + 1));
    f.write(&b, 1);
  }
  Database db(opts);
  EXPECT_FALSE(db.catalog_load_status().ok());
  EXPECT_NE(db.catalog_load_status().ToString().find("catalog"),
            std::string::npos);
  EXPECT_EQ(db.catalog()->num_tables(), 0u) << "no half-read schema";
  const Status s = db.Recover();
  ASSERT_FALSE(s.ok()) << "reopen over a corrupt catalog must refuse";
  EXPECT_NE(s.ToString().find("catalog"), std::string::npos);
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos);
  // DDL is poisoned too: schema created on top of an unreadable catalog
  // could never be persisted or recovered.
  TableId t2;
  const Status ddl = db.catalog()->CreateTable("anything", &t2);
  ASSERT_FALSE(ddl.ok());
  EXPECT_NE(ddl.ToString().find("catalog"), std::string::npos);
}

TEST(CatalogTest, VersionMismatchFailsReopenWithNamedError) {
  const std::string dir = TempDataDir("version");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kCentral);
  {
    Database db(opts);
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    db.SimulateKill();
  }
  {
    std::fstream f(dir + "/catalog.db",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const char v = 99;
    f.seekp(8);  // version u32, little-endian
    f.write(&v, 1);
  }
  Database db(opts);
  const Status s = db.Recover();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("version mismatch"), std::string::npos)
      << s.ToString();
}

// --------------------------------- DORA rewiring + TPC-B end-to-end

TEST(CatalogTest, TpcbReopensSelfContainedAndKeepsInvariants) {
  const std::string dir = TempDataDir("tpcb");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kPartitioned,
                                       /*parts=*/3);
  tpcb::TpcbWorkload::Config cfg;
  cfg.branches = 2;
  cfg.tellers_per_branch = 3;
  cfg.accounts_per_branch = 50;
  cfg.account_executors = 2;
  cfg.other_executors = 1;

  // Lifetime 1: load, register DORA wiring (persisted through the
  // catalog), run transactions, die without warning.
  {
    Database db(opts);
    tpcb::TpcbWorkload workload(&db, cfg);
    ASSERT_TRUE(workload.Load().ok());
    dora::DoraEngine engine(&db);
    workload.SetupDora(&engine);
    engine.Start();
    Rng rng(3);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(workload.RunDora(&engine, 0, rng).ok());
    }
    engine.Stop();
    ASSERT_TRUE(workload.CheckConsistency().ok());
    db.SimulateKill();
  }

  // Lifetime 2: nothing re-declared. The catalog restores schema + key
  // specs + routing config; Recover() rebuilds the indexes generically;
  // RegisterFromCatalog rebuilds the executor groups.
  Database db(opts);
  ASSERT_TRUE(db.catalog_load_status().ok())
      << db.catalog_load_status().ToString();
  ASSERT_EQ(db.catalog()->num_tables(), 4u);
  ASSERT_EQ(db.catalog()->num_indexes(), 3u);
  ASSERT_TRUE(db.Recover().ok());

  tpcb::TpcbWorkload workload(&db, cfg);
  ASSERT_TRUE(workload.Attach().ok());  // binds ids by name, no DDL
  ASSERT_TRUE(workload.CheckConsistency().ok())
      << "TPC-B balance invariant must hold after the cold restart";

  dora::DoraEngine engine(&db);
  EXPECT_EQ(engine.RegisterFromCatalog(), 4u)
      << "all four tables carried persisted routing config";
  EXPECT_EQ(engine.executors_of(workload.schema().account), 2u);
  EXPECT_EQ(engine.key_space_of(workload.schema().account),
            cfg.branches * cfg.accounts_per_branch + 1);
  engine.Start();
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(workload.RunDora(&engine, 0, rng).ok());
  }
  engine.Stop();
  EXPECT_TRUE(workload.CheckConsistency().ok());
}

// A durable database that never issues DDL still reopens: the constructor
// writes an (empty) catalog.db at first open, so a WAL holding only
// checkpoint records does not trip the missing-catalog guard.
TEST(CatalogTest, SchemaLessDatabaseWithCheckpointOnlyWalReopens) {
  const std::string dir = TempDataDir("schemaless");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kPartitioned);
  {
    Database db(opts);
    ASSERT_TRUE(db.Checkpoint().ok());  // stable log now non-empty
    db.SimulateKill();
  }
  Database db(opts);
  ASSERT_TRUE(db.catalog_load_status().ok());
  EXPECT_EQ(db.catalog()->num_tables(), 0u);
  EXPECT_TRUE(db.Recover().ok())
      << "checkpoint-only WAL with a (self-described) empty schema must "
         "recover";
}

// Reopening a pre-catalog data directory (no catalog.db) still works: the
// catalog starts empty, the application declares its schema as before,
// and the first DDL writes catalog.db so the NEXT reopen is
// self-contained.
TEST(CatalogTest, LegacyDirectoryWithoutCatalogAdoptsWriteThrough) {
  const std::string dir = TempDataDir("legacy");
  Database::Options opts = DurableOpts(dir, LogBackendKind::kCentral);
  TableId table;
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    std::filesystem::remove(dir + "/catalog.db");  // simulate pre-catalog
    auto txn = db.Begin();
    Rid rid;
    ASSERT_TRUE(db.Insert(txn.get(), table, "legacy-row", &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(txn.get()).ok());
    db.SimulateKill();
  }
  // Recovering with NO schema over a non-empty WAL is refused by name: it
  // would "succeed" over an empty database and let the checkpoint daemon
  // truncate the orphaned log. The refusal must survive bare-retry
  // lifetimes — no bootstrap catalog may be written over a WAL-bearing
  // catalog-less directory, or the next open would look legitimately
  // schema-less and recover to empty.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Database db(opts);
    ASSERT_TRUE(db.catalog_load_status().ok());
    EXPECT_EQ(db.catalog()->num_tables(), 0u);
    const Status bare = db.Recover();
    ASSERT_FALSE(bare.ok()) << "attempt " << attempt;
    EXPECT_NE(bare.ToString().find("catalog"), std::string::npos);
    db.SimulateKill();
  }
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());  // as before
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(db.catalog()->Heap(table)->record_count(), 1u);
    db.SimulateKill();
  }
  // Third lifetime: the re-creation above wrote catalog.db, so from here
  // on the directory is self-describing.
  Database db(opts);
  ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.catalog()->Heap(db.catalog()->GetTable("t")->id)
                ->record_count(),
            1u);
}

}  // namespace
}  // namespace doradb
