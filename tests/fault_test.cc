// Storage fault-injection tests: the three-tier error policy end to end.
//
//  1. Transient pwrite errors (ENOSPC/EIO once, short writes) are retried
//     or continued away — the commit succeeds and the engine stays healthy.
//  2. A failed fsync poisons the stream permanently (fsyncgate): the
//     in-flight commit fails indeterminate, later logged commits fail
//     Unavailable, reads and read-only commits keep serving, and /healthz
//     turns 503 — while every commit acked BEFORE the fault survives a
//     reopen over the same directory.
//  3. Torn writes (media died mid-record) are trimmed by recovery on both
//     WAL backends: after reopen no acked commit is lost.
//  4. A failed open degrades instead of aborting the process.
//  5. A randomized chaos crash loop arms arbitrary fault plans across
//     process lifetimes and checks the durability contract each time.
//
// EngineHealth and FaultInjector are process singletons: every test resets
// the injector on exit (guard below), and each Database construction
// resets the health latch, so tests stay independent inside one binary.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "obs/health.h"
#include "obs/watchdog.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace doradb {
namespace {

std::string TempFaultDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_fault_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Disarm on every exit path so a failing assertion cannot leak an armed
// plan into the next test.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::Default().Reset(); }
  ~InjectorGuard() { FaultInjector::Default().Reset(); }
};

Database::Options DurableOpts(const std::string& dir, LogBackendKind kind,
                              uint32_t parts = 2) {
  Database::Options o;
  o.buffer_frames = 512;
  o.data_dir = dir;
  o.log_backend = kind;
  o.log_partitions = parts;
  // Long flusher naps keep I/O commit-driven, so Arm() between synchronous
  // commits happens at a quiesced moment, as its contract requires.
  o.log.flush_interval_us = 200000;
  o.log_segment_bytes = 4096;
  return o;
}

FaultPlan WalPlan(FaultOp op, FaultMode mode = FaultMode::kError,
                  int err = EIO, bool sticky = false, uint64_t nth = 1) {
  FaultPlan p;
  p.op = op;
  p.mode = mode;
  p.err = err;
  p.sticky = sticky;
  p.nth = nth;
  p.path_substr = "seg-";  // WAL segment files only, both backends
  return p;
}

Status CommitValue(Database* db, TableId table, const Rid& rid,
                   const std::string& value) {
  auto txn = db->Begin();
  const Status u =
      db->Update(txn.get(), table, rid, value, AccessOptions::Baseline());
  if (!u.ok()) {
    (void)db->Abort(txn.get());
    return u;
  }
  return db->Commit(txn.get());
}

// ------------------------------------------------ tier 1: transient errors

TEST(FaultTest, TransientPwriteErrorIsRetriedAway) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("transient_enospc");
  auto db = std::make_unique<Database>(
      DurableOpts(dir, LogBackendKind::kPartitioned));
  db->log_manager()->BindThisThread(0);
  TableId table;
  ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());
  Rid rid;
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->Insert(txn.get(), table, "base", &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }

  // One ENOSPC on the next WAL pwrite; the bounded-retry loop re-issues
  // the write and the commit must still succeed with the engine healthy.
  FaultInjector::Default().Arm(
      WalPlan(FaultOp::kPwrite, FaultMode::kError, ENOSPC));
  ASSERT_TRUE(CommitValue(db.get(), table, rid, "v-after-enospc").ok());
  EXPECT_EQ(FaultInjector::Default().injected(), 1u);
  EXPECT_GE(obs::EngineHealth::Default().io_retries(), 1u);
  EXPECT_FALSE(obs::EngineHealth::Default().degraded());

  std::string out;
  ASSERT_TRUE(db->catalog()->Heap(table)->Get(rid, &out).ok());
  EXPECT_EQ(out, "v-after-enospc");
}

TEST(FaultTest, ShortWriteIsContinuedNotFailed) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("short_write");
  auto db = std::make_unique<Database>(
      DurableOpts(dir, LogBackendKind::kPartitioned));
  db->log_manager()->BindThisThread(0);
  TableId table;
  ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());
  Rid rid;
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->Insert(txn.get(), table, "base", &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }

  // pwrite lands half the batch and returns the count: a correct caller
  // continues from the written prefix without burning a retry attempt.
  FaultInjector::Default().Arm(
      WalPlan(FaultOp::kPwrite, FaultMode::kShortWrite));
  ASSERT_TRUE(CommitValue(db.get(), table, rid, "v-after-short").ok());
  EXPECT_EQ(FaultInjector::Default().injected(), 1u);
  EXPECT_EQ(obs::EngineHealth::Default().io_errors(), 0u);
  EXPECT_FALSE(obs::EngineHealth::Default().degraded());
}

// --------------------------------- tier 2 + 3: fsyncgate poison + degrade

TEST(FaultTest, StickyFsyncFailureDegradesAndPreservesAckedCommits) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("sticky_fsync");
  const Database::Options opts =
      DurableOpts(dir, LogBackendKind::kPartitioned);
  auto db = std::make_unique<Database>(opts);
  db->log_manager()->BindThisThread(0);
  TableId table;
  ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());

  constexpr int kRows = 4;
  std::vector<Rid> rids(kRows);
  {
    auto txn = db->Begin();
    for (int r = 0; r < kRows; ++r) {
      ASSERT_TRUE(db->Insert(txn.get(), table, "base", &rids[r],
                             AccessOptions::Baseline()).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  for (int r = 0; r < kRows; ++r) {
    ASSERT_TRUE(
        CommitValue(db.get(), table, rids[r], "acked-" + std::to_string(r))
            .ok());
  }

  // Every WAL fdatasync from here on fails: fsyncgate. The in-flight
  // commit's durability wait fails — its outcome is indeterminate, so the
  // engine must not claim it aborted cleanly, only fail it typed.
  FaultInjector::Default().Arm(WalPlan(FaultOp::kFdatasync, FaultMode::kError,
                                       EIO, /*sticky=*/true));
  const Status first = CommitValue(db.get(), table, rids[0], "maybe-0");
  EXPECT_FALSE(first.ok());
  EXPECT_TRUE(obs::EngineHealth::Default().degraded());
  EXPECT_GE(obs::EngineHealth::Default().io_errors(), 1u);

  // Degraded entry: later logged commits fail fast with Unavailable and
  // roll back — they never reach the poisoned stream.
  const Status next = CommitValue(db.get(), table, rids[1], "never-1");
  EXPECT_TRUE(next.IsUnavailable()) << next.ToString();

  // Reads and read-only commits keep serving.
  {
    auto ro = db->Begin();
    std::string out;
    EXPECT_TRUE(db->Read(ro.get(), table, rids[2], &out,
                         AccessOptions::Baseline()).ok());
    EXPECT_EQ(out, "acked-2");
    EXPECT_TRUE(db->Commit(ro.get()).ok());
  }

  // The watchdog folds the latch into its verdict: /healthz serves this
  // Check() result as 503, and the counters ride the same snapshot.
  obs::Watchdog::Health h = obs::Watchdog::Default().Check();
  EXPECT_FALSE(h.ok);
  EXPECT_TRUE(h.degraded);
  EXPECT_GE(h.io_errors, 1u);
  EXPECT_NE(h.ToJson().find("\"health_state\":1"), std::string::npos);
  EXPECT_NE(db->Metrics().ToJson().find("engine.health_state"),
            std::string::npos);

  // Kill the lifetime, heal the medium, reopen: every commit acked before
  // the fault must be there; rids[0] may also hold the indeterminate
  // value (its commit record may have reached the medium).
  db->SimulateKill();
  db.reset();
  FaultInjector::Default().Reset();
  db = std::make_unique<Database>(opts);
  ASSERT_TRUE(db->catalog_load_status().ok());
  ASSERT_TRUE(db->Recover(nullptr).ok());
  EXPECT_FALSE(obs::EngineHealth::Default().degraded())
      << "fresh lifetime over healed media must start healthy";
  table = db->catalog()->GetTable("t")->id;
  for (int r = 0; r < kRows; ++r) {
    std::string out;
    ASSERT_TRUE(db->catalog()->Heap(table)->Get(rids[r], &out).ok());
    if (r == 0) {
      EXPECT_TRUE(out == "acked-0" || out == "maybe-0") << out;
    } else {
      EXPECT_EQ(out, "acked-" + std::to_string(r));
    }
  }
}

// ------------------------------------------- torn writes across a reopen

void TornWriteThenReopen(LogBackendKind kind, const std::string& tag) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("torn_" + tag);
  const Database::Options opts = DurableOpts(dir, kind);
  auto db = std::make_unique<Database>(opts);
  db->log_manager()->BindThisThread(0);
  TableId table;
  ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());
  Rid rid;
  {
    auto txn = db->Begin();
    ASSERT_TRUE(db->Insert(txn.get(), table, "base", &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  ASSERT_TRUE(CommitValue(db.get(), table, rid, "acked").ok());

  // Sticky torn writes: every WAL pwrite lands a prefix and then reports
  // the media dead, so the retry loop cannot heal it — the stream poisons
  // with a torn record physically on disk.
  FaultInjector::Default().Arm(WalPlan(FaultOp::kPwrite, FaultMode::kTorn,
                                       EIO, /*sticky=*/true));
  const Status s = CommitValue(db.get(), table, rid, "torn");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(obs::EngineHealth::Default().degraded());

  // Kill, heal, reopen: recovery must trim the torn tail and land on a
  // state no older than the last acked commit.
  db->SimulateKill();
  db.reset();
  FaultInjector::Default().Reset();
  db = std::make_unique<Database>(opts);
  ASSERT_TRUE(db->catalog_load_status().ok());
  ASSERT_TRUE(db->Recover(nullptr).ok());
  table = db->catalog()->GetTable("t")->id;
  std::string out;
  ASSERT_TRUE(db->catalog()->Heap(table)->Get(rid, &out).ok());
  EXPECT_TRUE(out == "acked" || out == "torn")
      << tag << ": row holds '" << out << "', older than its acked write";
}

TEST(FaultTest, TornWriteRecoveredOnReopenCentral) {
  TornWriteThenReopen(LogBackendKind::kCentral, "central");
}

TEST(FaultTest, TornWriteRecoveredOnReopenPartitioned) {
  TornWriteThenReopen(LogBackendKind::kPartitioned, "plog");
}

// ------------------------------------------------ open faults never abort

TEST(FaultTest, OpenFaultDegradesInsteadOfAborting) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("open_fault");
  // The page store cannot open: the Database must come up degraded — not
  // call std::abort, and not silently fall back to memory pages.
  FaultPlan plan;
  plan.op = FaultOp::kOpen;
  plan.err = EIO;
  plan.sticky = true;
  plan.path_substr = "pages.db";
  FaultInjector::Default().Arm(plan);

  auto db = std::make_unique<Database>(
      DurableOpts(dir, LogBackendKind::kPartitioned));
  db->log_manager()->BindThisThread(0);
  EXPECT_TRUE(obs::EngineHealth::Default().degraded());

  // Logged work fails typed, somewhere between the operation and the
  // commit; nothing crashes and teardown is clean.
  TableId table;
  const Status create = db->catalog()->CreateTable("t", &table);
  if (create.ok()) {
    auto txn = db->Begin();
    Rid rid;
    Status s = db->Insert(txn.get(), table, "x", &rid,
                          AccessOptions::Baseline());
    if (s.ok()) s = db->Commit(txn.get());
    else (void)db->Abort(txn.get());
    EXPECT_FALSE(s.ok());
  }
  db.reset();  // destructor must tolerate the born-poisoned store
}

// ------------------------------------------------------- chaos crash loop

// Randomized fault plans armed mid-round across process lifetimes; after
// every kill + heal + reopen, each row must hold a value at least as
// recent as its last acknowledged (Commit() returned OK) write.
void ChaosCrashLoop(LogBackendKind kind, uint64_t seed) {
  InjectorGuard guard;
  Rng rng(seed * 0xA24BAED4963EE407ull + 17);
  const std::string dir = TempFaultDir(
      "chaos_" + std::to_string(static_cast<int>(kind)) + "_" +
      std::to_string(seed));
  constexpr uint32_t kPartitions = 2;
  constexpr int kRows = 6;
  constexpr int kTxnsPerRound = 18;
  constexpr int kRounds = 3;
  const Database::Options opts = DurableOpts(dir, kind, kPartitions);
  auto db = std::make_unique<Database>(opts);
  db->log_manager()->BindThisThread(0);
  TableId table;
  ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());

  std::vector<Rid> rids(kRows);
  {
    auto setup = db->Begin();
    for (int r = 0; r < kRows; ++r) {
      ASSERT_TRUE(db->Insert(setup.get(), table, "base", &rids[r],
                             AccessOptions::Baseline()).ok());
    }
    ASSERT_TRUE(db->Commit(setup.get()).ok());
  }

  struct Write {
    std::string value;
    bool acked;
  };
  std::vector<std::vector<Write>> history(kRows, {{"base", true}});

  for (int round = 0; round < kRounds; ++round) {
    // Arm one random fault plan at a random point in the round. Between
    // synchronous commits the WAL is quiescent (long flusher naps), which
    // is the Arm() contract.
    const int arm_at =
        static_cast<int>(rng.UniformInt(uint64_t{1}, kTxnsPerRound - 1));
    for (int t = 0; t < kTxnsPerRound; ++t) {
      if (t == arm_at) {
        const uint64_t pick = rng.UniformInt(uint64_t{0}, 2);
        const FaultOp op =
            pick == 2 ? FaultOp::kFdatasync : FaultOp::kPwrite;
        const FaultMode mode =
            pick == 1 ? FaultMode::kTorn : FaultMode::kError;
        FaultInjector::Default().Arm(WalPlan(
            op, mode, rng.Percent(50) ? EIO : ENOSPC,
            /*sticky=*/rng.Percent(50),
            /*nth=*/rng.UniformInt(uint64_t{1}, 4)));
      }
      const int row = static_cast<int>(
          rng.UniformInt(uint64_t{0}, uint64_t{kRows - 1}));
      db->log_manager()->BindThisThread(static_cast<uint32_t>(
          rng.UniformInt(uint64_t{0}, kPartitions - 1)));
      const std::string value = "s" + std::to_string(seed) + "r" +
                                std::to_string(round) + "t" +
                                std::to_string(t);
      auto txn = db->Begin();
      const Status u = db->Update(txn.get(), table, rids[row], value,
                                  AccessOptions::Baseline());
      if (!u.ok()) {
        (void)db->Abort(txn.get());
        continue;  // rolled back: not even a candidate value
      }
      history[row].push_back(Write{value, false});
      const Status c = db->Commit(txn.get());
      if (c.ok()) history[row].back().acked = true;
      // !ok: aborted or indeterminate — the value stays an unacked
      // candidate either way (rollback can't undo past an acked commit).
    }

    // Kill this lifetime mid-whatever, heal the medium, open the next.
    db->SimulateKill();
    db.reset();
    FaultInjector::Default().Reset();
    db = std::make_unique<Database>(opts);
    db->log_manager()->BindThisThread(0);
    ASSERT_TRUE(db->catalog_load_status().ok())
        << db->catalog_load_status().ToString();
    ASSERT_NE(db->catalog()->GetTable("t"), nullptr);
    table = db->catalog()->GetTable("t")->id;
    ASSERT_TRUE(db->Recover(nullptr).ok());
    EXPECT_FALSE(obs::EngineHealth::Default().degraded());

    for (int row = 0; row < kRows; ++row) {
      std::string out;
      ASSERT_TRUE(db->catalog()->Heap(table)->Get(rids[row], &out).ok());
      const auto& h = history[row];
      size_t last_acked = 0;
      for (size_t i = 0; i < h.size(); ++i) {
        if (h[i].acked) last_acked = i;
      }
      bool found = false;
      for (size_t i = last_acked; i < h.size(); ++i) {
        if (h[i].value == out) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "seed " << seed << " round " << round << " row "
                         << row << " holds '" << out
                         << "', older than its last acked write '"
                         << h[last_acked].value << "'";
      history[row] = {{out, true}};
    }
  }
}

TEST(FaultChaosTest, CrashLoopNoAckedCommitLostPartitioned) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    ChaosCrashLoop(LogBackendKind::kPartitioned, seed);
  }
}

TEST(FaultChaosTest, CrashLoopNoAckedCommitLostCentral) {
  ChaosCrashLoop(LogBackendKind::kCentral, 1);
}

// --------------------- crash straddling a routing migration (satellite)
//
// MigrateRoutingRule publishes the new assignment in memory first and only
// then writes it through catalog.db. A kill inside that window must leave
// the next lifetime with EXACTLY one of the two assignments — the old one
// when the write-through failed, the new one once it succeeded — never a
// blend, and never at the cost of an acknowledged commit. Alternate rounds
// make the catalog unwritable (sticky open fault) before migrating, then
// kill and reopen.

TEST(FaultChaosTest, CrashDuringMigrationAdoptsExactlyOneRule) {
  InjectorGuard guard;
  const std::string dir = TempFaultDir("migration_crash");
  const Database::Options opts =
      DurableOpts(dir, LogBackendKind::kPartitioned);
  constexpr uint64_t kKeySpace = 1000;
  constexpr int kRounds = 6;

  Rid rid;
  {
    auto db = std::make_unique<Database>(opts);
    db->log_manager()->BindThisThread(0);
    TableId table;
    ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());
    dora::DoraEngine engine(db.get());
    engine.RegisterTable(table, kKeySpace, /*executors=*/2);
    ASSERT_TRUE(engine.registration_status().ok())
        << engine.registration_status().ToString();
    auto setup = db->Begin();
    ASSERT_TRUE(db->Insert(setup.get(), table, "base", &rid,
                           AccessOptions::Baseline())
                    .ok());
    ASSERT_TRUE(db->Commit(setup.get()).ok());
    db->SimulateKill();
  }

  // What catalog.db durably holds vs. what the last migration published
  // in memory. They start identical (the uniform two-way assignment).
  dora::RoutingRule persisted;
  persisted.boundaries = {kKeySpace / 2};
  persisted.executor_of_dataset = {0, 1};
  persisted.version = 0;
  dora::RoutingRule published = persisted;
  std::string acked = "base";

  for (int round = 0; round < kRounds; ++round) {
    auto db = std::make_unique<Database>(opts);
    db->log_manager()->BindThisThread(0);
    ASSERT_TRUE(db->catalog_load_status().ok())
        << db->catalog_load_status().ToString();
    ASSERT_TRUE(db->Recover(nullptr).ok());
    ASSERT_NE(db->catalog()->GetTable("t"), nullptr);
    const TableId table = db->catalog()->GetTable("t")->id;

    // Durability first: the previous lifetime's acked value survived.
    std::string out;
    ASSERT_TRUE(db->catalog()->Heap(table)->Get(rid, &out).ok());
    ASSERT_EQ(out, acked) << "round " << round << " lost an acked commit";

    dora::DoraEngine engine(db.get());
    ASSERT_EQ(engine.RegisterFromCatalog(), 1u);
    const auto adopted = engine.routing_of(table)->Current();
    const bool is_old = adopted->version == persisted.version &&
                        adopted->boundaries == persisted.boundaries;
    const bool is_new = adopted->version == published.version &&
                        adopted->boundaries == published.boundaries;
    ASSERT_TRUE(is_old || is_new)
        << "round " << round << ": adopted v" << adopted->version
        << " matches neither the pre- nor the post-migration assignment";
    if (published.version != persisted.version) {
      // Last round's write-through failed: the published-but-unpersisted
      // split must have died with the process.
      EXPECT_TRUE(is_old) << "round " << round;
      EXPECT_FALSE(is_new) << "round " << round;
    }
    engine.Start();

    // One acked commit before the migration window opens.
    const std::string value = "r" + std::to_string(round);
    ASSERT_TRUE(CommitValue(db.get(), table, rid, value).ok());
    acked = value;

    const bool fault = round % 2 == 1;
    if (fault) {
      FaultPlan p;
      p.op = FaultOp::kOpen;
      p.mode = FaultMode::kError;
      p.err = EIO;
      p.sticky = true;
      p.path_substr = "catalog.db";
      FaultInjector::Default().Arm(p);
    }
    auto rule = std::make_shared<dora::RoutingRule>();
    rule->boundaries = {round % 2 == 0 ? kKeySpace / 4
                                       : (3 * kKeySpace) / 4};
    rule->executor_of_dataset = {0, 1};
    rule->version = adopted->version + 1;
    const Status mig = engine.MigrateRoutingRule(table, rule);
    if (fault) {
      EXPECT_FALSE(mig.ok())
          << "write-through must fail while catalog.db is unwritable";
      // Publication precedes the write-through, so the new rule is live
      // in memory all the same — the kill below is what discards it.
      EXPECT_EQ(engine.routing_of(table)->Current()->version,
                rule->version);
      published = *rule;  // persisted stays at the old assignment
    } else {
      ASSERT_TRUE(mig.ok()) << mig.ToString();
      persisted = *rule;
      published = *rule;
    }
    FaultInjector::Default().Reset();
    engine.Stop();
    db->SimulateKill();
  }
}

}  // namespace
}  // namespace doradb
