// Unit tests for the util substrate: spin latches (TATAS, MCS), the
// reader-writer latch, blocking queues, the time-breakdown accounting
// machinery, and RNG distributions.

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/queue.h"
#include "util/rng.h"
#include "util/rwlatch.h"
#include "util/spinlock.h"
#include "util/sync_stats.h"

namespace doradb {
namespace {

// ----------------------------------------------------------------- latches

template <typename LockFn, typename UnlockFn>
void HammerCounter(int threads, int iters, LockFn lock, UnlockFn unlock,
                   int64_t* counter) {
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        lock();
        ++*counter;  // data race iff mutual exclusion broken
        unlock();
      }
    });
  }
  for (auto& th : ts) th.join();
}

TEST(TatasLockTest, MutualExclusion) {
  TatasLock lock;
  int64_t counter = 0;
  HammerCounter(4, 20000, [&] { lock.Lock(); }, [&] { lock.Unlock(); },
                &counter);
  EXPECT_EQ(counter, 4 * 20000);
}

TEST(TatasLockTest, TryLockFailsWhenHeld) {
  TatasLock lock;
  lock.Lock();
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(McsLockTest, MutualExclusion) {
  // MCS needs the queue node visible to both lock and unlock, so the
  // generic helper does not fit; hammer explicitly.
  McsLock lock;
  int64_t counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        McsLock::QNode qn;
        lock.Lock(&qn);
        ++counter;
        lock.Unlock(&qn);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(counter, 4 * 20000);
}

TEST(McsLockTest, GuardIsFifoUnderContention) {
  // Rough FIFO check: with heavy contention, no thread should starve.
  McsLock lock;
  std::vector<int> per_thread(4, 0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        McsGuard g(lock);
        per_thread[t]++;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  for (auto& th : ts) th.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(per_thread[t], 0) << "thread " << t << " starved";
  }
}

TEST(RwLatchTest, ManyReadersCoexist) {
  RwLatch latch;
  latch.ReadLock();
  EXPECT_TRUE(latch.TryReadLock());
  EXPECT_FALSE(latch.TryWriteLock());
  latch.ReadUnlock();
  latch.ReadUnlock();
  EXPECT_TRUE(latch.TryWriteLock());
  latch.WriteUnlock();
}

TEST(RwLatchTest, WriterExcludesEveryone) {
  RwLatch latch;
  latch.WriteLock();
  EXPECT_FALSE(latch.TryReadLock());
  EXPECT_FALSE(latch.TryWriteLock());
  latch.WriteUnlock();
}

TEST(RwLatchTest, ReadersWritersStress) {
  RwLatch latch;
  int64_t value = 0;
  std::atomic<bool> torn{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {  // writers: keep value = 2k
      for (int i = 0; i < 5000; ++i) {
        WriteGuard g(latch);
        ++value;
        ++value;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {  // readers: must never observe odd value
      while (!stop.load()) {
        ReadGuard g(latch);
        if (value % 2 != 0) torn = true;
      }
    });
  }
  ts[0].join();
  ts[1].join();
  stop = true;
  ts[2].join();
  ts[3].join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(value, 2 * 2 * 5000);
}

// ------------------------------------------------------------------ queues

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.Push(i);
  for (int i = 0; i < 100; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    got = v.has_value() && *v == 42;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  q.Push(42);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueueTest, CloseWakesConsumers) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, PopAllDrainsBacklogInOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 50; ++i) q.Push(i);
  std::deque<int> batch = q.PopAll();
  ASSERT_EQ(batch.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  // Queue is empty now; a later push starts a fresh batch.
  q.Push(99);
  batch = q.PopAll();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front(), 99);
}

TEST(BlockingQueueTest, PopAllBlocksThenTakesEverything) {
  BlockingQueue<int> q;
  std::atomic<size_t> got{0};
  std::thread consumer([&] { got = q.PopAll().size(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0u);
  q.Push(1);
  q.Push(2);
  consumer.join();
  // At least the first item; typically both land in the one batch.
  EXPECT_GE(got.load(), 1u);
}

TEST(BlockingQueueTest, PopAllReturnsEmptyOnlyWhenClosed) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.PopAll().size(), 1u) << "close drains the backlog first";
  EXPECT_TRUE(q.PopAll().empty()) << "closed + empty = empty batch";
}

TEST(BlockingQueueTest, MpmcDeliversEverything) {
  BlockingQueue<int> q;
  constexpr int kProducers = 3, kConsumers = 3, kPer = 2000;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i) q.Push(p * kPer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      while (auto v = q.Pop()) sum.fetch_add(*v);
    });
  }
  for (int p = 0; p < kProducers; ++p) ts[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) ts[kProducers + c].join();
  const int64_t n = kProducers * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// -------------------------------------------------------------- sync stats

TEST(SyncStatsTest, ScopedTimeClassAttributesNested) {
  ThreadStats& stats = ThreadStats::Local();
  stats.Reset();
  {
    ScopedTimeClass outer(TimeClass::kWork);
    const uint64_t t0 = Cycles::Now();
    while (Cycles::Now() - t0 < 100000) {
    }
    {
      ScopedTimeClass inner(TimeClass::kLockAcquire);
      const uint64_t t1 = Cycles::Now();
      while (Cycles::Now() - t1 < 100000) {
      }
    }
  }
  stats.Flush();
  const StatsSnapshot s = stats.Snapshot();
  EXPECT_GT(s.Cycles(TimeClass::kWork), 50000u);
  EXPECT_GT(s.Cycles(TimeClass::kLockAcquire), 50000u);
  // Inner time must NOT be double counted as outer.
  EXPECT_LT(s.Cycles(TimeClass::kWork), 200000u);
}

TEST(SyncStatsTest, FractionsSumToOne) {
  ThreadStats& stats = ThreadStats::Local();
  stats.Reset();
  {
    ScopedTimeClass work(TimeClass::kWork);
    const uint64_t t0 = Cycles::Now();
    while (Cycles::Now() - t0 < 50000) {
    }
  }
  stats.Flush();
  const StatsSnapshot s = stats.Snapshot();
  double total = 0;
  for (size_t i = 1; i < kNumTimeClasses; ++i) {
    total += s.Fraction(static_cast<TimeClass>(i));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SyncStatsTest, LockCountersAccumulate) {
  ThreadStats& stats = ThreadStats::Local();
  stats.Reset();
  stats.CountLock(LockCounter::kRowLevel, 3);
  stats.CountLock(LockCounter::kDoraLocal);
  const StatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.Locks(LockCounter::kRowLevel), 3u);
  EXPECT_EQ(s.Locks(LockCounter::kDoraLocal), 1u);
  EXPECT_EQ(s.Locks(LockCounter::kHigherLevel), 0u);
}

TEST(SyncStatsTest, AggregateSeesOtherThreads) {
  const StatsSnapshot before = ThreadStats::AggregateSnapshot();
  std::thread worker([] {
    ThreadStats::Local().CountLock(LockCounter::kHigherLevel, 7);
    ThreadStats::Local().Flush();
  });
  worker.join();
  const StatsSnapshot after = ThreadStats::AggregateSnapshot();
  EXPECT_EQ(after.Locks(LockCounter::kHigherLevel) -
                before.Locks(LockCounter::kHigherLevel),
            7u);
}

// --------------------------------------------------------------------- rng

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10}, uint64_t{20});
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, NURandRespectsBounds) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NURand(255, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 500u) << "NURand should spread widely";
}

TEST(RngTest, TatpSubscriberIdInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.TatpSubscriberId(100000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100000u);
  }
}

TEST(RngTest, LastNameMatchesSpecExamples) {
  // TPC-C 4.3.2.3 syllables.
  EXPECT_EQ(Rng::LastName(0), "BARBARBAR");
  EXPECT_EQ(Rng::LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(Rng::LastName(999), "EINGEINGEING");
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(4);
  auto p = rng.Permutation(1000);
  std::set<uint32_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 999u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, AStringLengthBounds) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::string s = rng.AString(3, 9);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 9u);
  }
}

}  // namespace
}  // namespace doradb
