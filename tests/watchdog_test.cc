// Tests for the self-diagnosis layer: heartbeat table semantics, the
// load-heatmap ring (wrap + concurrent read/write consistency), stall
// detection through the watchdog (heartbeats and progress probes),
// blackbox report structure, and the live obs endpoint (routing and a
// real socket round trip). Ends with an end-to-end rig: a deliberately
// stalled executor must flip /healthz to 503 and leave a flight-recorder
// dump under <data_dir>/blackbox/.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "obs/heartbeat.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/obs_server.h"
#include "obs/watchdog.h"

namespace doradb {
namespace obs {
namespace {

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_wd_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Minimal HTTP/1.0 GET against 127.0.0.1:<port>. Returns {status, body};
// status -1 on connect failure.
std::pair<int, std::string> HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {-1, ""};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {-1, ""};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  ssize_t off = 0;
  while (off < static_cast<ssize_t>(req.size())) {
    const ssize_t n = ::write(fd, req.data() + off, req.size() - off);
    if (n <= 0) break;
    off += n;
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) resp.append(buf, n);
  ::close(fd);
  int status = -1;
  if (resp.rfind("HTTP/", 0) == 0) {
    const size_t sp = resp.find(' ');
    if (sp != std::string::npos) status = std::atoi(resp.c_str() + sp + 1);
  }
  const size_t body_at = resp.find("\r\n\r\n");
  return {status,
          body_at == std::string::npos ? "" : resp.substr(body_at + 4)};
}

// ------------------------------------------------------------- heartbeats

TEST(HeartbeatTest, RegisterSnapshotUnregister) {
  auto& table = Heartbeats::Default();
  const size_t before = table.size();
  Heartbeats::Handle* h = table.Register("test.hb.basic");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(table.size(), before + 1);
  h->SetStage("working");
  h->Beat();

  bool found = false;
  for (const Heartbeats::Row& row : table.Snapshot()) {
    if (row.name != "test.hb.basic") continue;
    found = true;
    EXPECT_STREQ(row.stage, "working");
    EXPECT_FALSE(row.idle);
    EXPECT_GT(row.last_beat_tsc, 0u);
  }
  EXPECT_TRUE(found);

  table.Unregister(h);
  EXPECT_EQ(table.size(), before);
}

TEST(HeartbeatTest, LeavingIdleCountsAsBeat) {
  auto& table = Heartbeats::Default();
  Heartbeats::Handle* h = table.Register("test.hb.idle");
  h->SetIdle(true);
  uint64_t idle_beat = 0;
  for (const auto& row : table.Snapshot()) {
    if (row.name == "test.hb.idle") idle_beat = row.last_beat_tsc;
  }
  SleepMs(5);
  h->SetIdle(false);  // must refresh the beat — no instant staleness
  for (const auto& row : table.Snapshot()) {
    if (row.name == "test.hb.idle") {
      EXPECT_GT(row.last_beat_tsc, idle_beat);
    }
  }
  table.Unregister(h);
}

// ---------------------------------------------------------------- heatmap

TEST(HeatmapTest, RingWrapsKeepingNewestWindows) {
  LoadHeatmap hm(4);
  EXPECT_EQ(hm.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    HeatmapWindow w;
    ExecutorSample s;
    s.executor = static_cast<uint32_t>(i);
    w.rows.push_back(s);
    hm.Push(std::move(w));
  }
  const auto windows = hm.Windows();
  ASSERT_EQ(windows.size(), 4u) << "ring must evict past capacity";
  // Sequences stay monotonic and the newest windows survive.
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].seq, windows[i - 1].seq + 1);
  }
  EXPECT_EQ(windows.back().seq, 10u);
  ASSERT_EQ(windows.back().rows.size(), 1u);
  EXPECT_EQ(windows.back().rows[0].executor, 9u);
  EXPECT_EQ(hm.Latest().seq, 10u);
  EXPECT_EQ(hm.sweeps(), 10u);
}

TEST(HeatmapTest, ConcurrentPushAndSnapshotStayConsistent) {
  LoadHeatmap hm(8);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto windows = hm.Windows();
      for (size_t i = 1; i < windows.size(); ++i) {
        // A torn snapshot would show non-monotonic or duplicated seqs.
        if (windows[i].seq <= windows[i - 1].seq) bad.fetch_add(1);
      }
      const std::string json = hm.ToJson();
      if (json.find("\"windows\":[") == std::string::npos) bad.fetch_add(1);
    }
  });

  constexpr int kWriters = 2;
  constexpr int kPerWriter = 400;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&hm, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        HeatmapWindow w;
        ExecutorSample s;
        s.executor = static_cast<uint32_t>(t);
        s.busy_frac = 0.5;
        w.rows.push_back(s);
        hm.Push(std::move(w));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(hm.sweeps(), static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(hm.Windows().size(), 8u);
  EXPECT_EQ(hm.Latest().seq, static_cast<uint64_t>(kWriters * kPerWriter));
}

TEST(HeatmapTest, SweepDiffsSourceCountersIntoRates) {
  LoadHeatmap hm(16);
  std::atomic<uint64_t> actions{0};
  Histogram qwait;
  const uint64_t token = hm.RegisterSource([&] {
    std::vector<ExecLoadRaw> out;
    ExecLoadRaw raw;
    raw.executor = 0;
    raw.inbox_depth = 3;
    raw.actions_executed = actions.load();
    raw.busy_cycles = 0;
    raw.queue_wait = &qwait;
    out.push_back(raw);
    return out;
  });

  hm.Sweep();  // primes the diff state; rates read 0
  EXPECT_EQ(hm.Latest().rows.at(0).drained_per_s, 0.0);

  actions.store(5000);
  for (int i = 0; i < 100; ++i) qwait.Record(4096);
  SleepMs(20);
  hm.Sweep();

  const HeatmapWindow w = hm.Latest();
  ASSERT_EQ(w.rows.size(), 1u);
  EXPECT_EQ(w.rows[0].inbox_depth, 3);
  EXPECT_GT(w.rows[0].drained_per_s, 0.0);
  EXPECT_GT(w.rows[0].queue_wait_p99_ns, 0u)
      << "windowed p99 must come from the bucket delta";
  EXPECT_GE(w.span_ms, 1.0);
  hm.UnregisterSource(token);

  // Sweep mirrors levels into registry gauges.
  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  bool saw_gauge = false;
  for (const auto& m : snap.metrics) {
    if (m.name == "dora.exec.0.queue_wait_p99_ns") saw_gauge = true;
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(HeatmapTest, DeltaPercentileInterpolatesWithinBucket) {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  buckets[12] = 100;  // all samples in [4096, 8192)
  const uint64_t p50 = LoadHeatmap::DeltaPercentile(buckets, 100, 50.0);
  EXPECT_GE(p50, uint64_t{4096});
  EXPECT_LT(p50, uint64_t{8192});
  EXPECT_EQ(LoadHeatmap::DeltaPercentile(buckets, 0, 99.0), 0u)
      << "empty window must report 0, not garbage";
}

// --------------------------------------------------------------- watchdog

TEST(WatchdogTest, StalledHeartbeatIsDetectedIdleIsExempt) {
  Watchdog wd;
  Watchdog::Options wo;
  wo.interval_ms = 10000;  // tick manually via Check()
  wo.stall_ms = 100;
  wd.Retain(wo);

  Heartbeats::Handle* h = Heartbeats::Default().Register("test.wd.stuck");
  h->SetStage("wedged");
  SleepMs(250);

  Watchdog::Health sick = wd.Check();
  EXPECT_FALSE(sick.ok);
  bool complained = false;
  for (const std::string& c : sick.complaints) {
    if (c.find("test.wd.stuck") != std::string::npos) {
      complained = true;
      EXPECT_NE(c.find("stalled in stage wedged"), std::string::npos) << c;
    }
  }
  EXPECT_TRUE(complained);
  EXPECT_GE(sick.threads, 1u);

  h->Beat();
  EXPECT_TRUE(wd.Check().ok) << "a fresh beat clears the stall";

  h->SetIdle(true);
  SleepMs(250);
  EXPECT_TRUE(wd.Check().ok) << "idle threads are exempt from staleness";

  Heartbeats::Default().Unregister(h);
  wd.Release();
  EXPECT_FALSE(wd.running());
}

TEST(WatchdogTest, ProgressProbeStuckOnlyWithWorkOutstanding) {
  Watchdog wd;
  Watchdog::Options wo;
  wo.interval_ms = 10000;
  wo.stall_ms = 100;
  wd.Retain(wo);

  std::atomic<bool> outstanding{true};
  std::atomic<uint64_t> position{42};
  const uint64_t token = wd.RegisterProgressProbe(
      "test.wd.horizon", [&] { return outstanding.load(); },
      [&] { return position.load(); });

  EXPECT_TRUE(wd.Check().ok) << "first check primes the probe";
  SleepMs(250);
  Watchdog::Health sick = wd.Check();
  EXPECT_FALSE(sick.ok);
  bool complained = false;
  for (const std::string& c : sick.complaints) {
    if (c.find("test.wd.horizon") != std::string::npos &&
        c.find("stuck at 42") != std::string::npos) {
      complained = true;
    }
  }
  EXPECT_TRUE(complained);

  position.store(43);  // progress clears the stall
  EXPECT_TRUE(wd.Check().ok);

  outstanding.store(false);  // no work: frozen position is fine
  SleepMs(250);
  EXPECT_TRUE(wd.Check().ok);

  wd.UnregisterProbe(token);
  wd.Release();
}

TEST(WatchdogTest, BlackboxReportHasAllSectionsAndParsableMetrics) {
  const std::string dir = TempDirFor("blackbox");
  Watchdog wd;
  Watchdog::Options wo;
  wo.interval_ms = 10000;
  wo.dump_dir = dir;
  wd.Retain(wo);

  const std::string path = wd.WriteBlackbox("unit-test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(wd.dumps_written(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string report = ss.str();

  for (const char* marker :
       {"DORADB_BLACKBOX v1", "reason: unit-test", "== threads ==",
        "== health ==", "== heatmap ==", "== metrics ==", "== trace ==",
        "== end =="}) {
    EXPECT_NE(report.find(marker), std::string::npos)
        << "missing section marker: " << marker;
  }

  // The metrics section is one JSON document per line; the first line must
  // round-trip through the strict snapshot parser.
  const size_t m = report.find("== metrics ==");
  ASSERT_NE(m, std::string::npos);
  size_t start = report.find('\n', m) + 1;
  const size_t end = report.find('\n', start);
  const std::string metrics_json = report.substr(start, end - start);
  MetricsSnapshot snap;
  EXPECT_TRUE(MetricsSnapshot::FromJson(metrics_json, &snap).ok())
      << metrics_json.substr(0, 200);
  EXPECT_FALSE(snap.metrics.empty());

  wd.Release();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- obs server

TEST(ObsServerTest, HandleRoutesWithoutASocket) {
  const auto [ms, metrics_body] = ObsServer::Handle("/metrics");
  EXPECT_EQ(ms, 200);
  MetricsSnapshot snap;
  EXPECT_TRUE(MetricsSnapshot::FromJson(metrics_body, &snap).ok())
      << metrics_body.substr(0, 200);

  const auto [hs, heatmap_body] = ObsServer::Handle("/heatmap");
  EXPECT_EQ(hs, 200);
  EXPECT_NE(heatmap_body.find("\"windows\":["), std::string::npos);

  const auto [zs, health_body] = ObsServer::Handle("/healthz");
  EXPECT_TRUE(zs == 200 || zs == 503);
  EXPECT_NE(health_body.find("\"ok\":"), std::string::npos);

  EXPECT_EQ(ObsServer::Handle("/nope").first, 404);
}

TEST(ObsServerTest, ServesMetricsOverLoopbackSocket) {
  ObsServer::Options so;
  so.port = 0;  // ephemeral
  ObsServer server(so);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const auto [status, body] = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(status, 200);
  MetricsSnapshot snap;
  EXPECT_TRUE(MetricsSnapshot::FromJson(body, &snap).ok());

  EXPECT_EQ(HttpGet(server.port(), "/bogus").first, 404);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

// ----------------------------------------------------- end-to-end: stall

TEST(WatchdogEndToEndTest, StalledExecutorTripsHealthzAndDumpsBlackbox) {
  const std::string dir = TempDirFor("e2e");
  Database::Options opts;
  opts.buffer_frames = 1024;
  opts.data_dir = dir;
  opts.watchdog_interval_ms = 20;
  opts.stall_threshold_ms = 120;
  opts.obs_port = 0;
  {
    Database db(opts);
    ASSERT_GT(db.obs_port(), 0);
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("stall", &table).ok());
    dora::DoraEngine engine(&db);
    engine.RegisterTable(table, 100, 2);
    engine.Start();

    // A transaction whose action body wedges its executor for far longer
    // than the stall threshold — the "stuck in an action" failure mode.
    std::thread client([&] {
      auto dtxn = engine.BeginTxn();
      dora::FlowGraph g;
      g.AddPhase().AddAction(table, 5, dora::LocalMode::kX,
                             [](dora::ActionEnv&) {
                               SleepMs(800);
                               return Status::OK();
                             });
      EXPECT_TRUE(engine.Run(dtxn, std::move(g)).ok());
    });

    // While the executor is wedged, /healthz must flip to 503.
    bool saw_unhealthy = false;
    for (int i = 0; i < 300 && !saw_unhealthy; ++i) {
      const auto [status, body] = HttpGet(db.obs_port(), "/healthz");
      if (status == 503) {
        saw_unhealthy = true;
        EXPECT_NE(body.find("\"ok\":false"), std::string::npos);
        EXPECT_NE(body.find("stalled"), std::string::npos) << body;
      }
      SleepMs(10);
    }
    client.join();
    EXPECT_TRUE(saw_unhealthy)
        << "watchdog never reported the wedged executor via /healthz";

    // The fresh stall must have left a flight-recorder dump.
    EXPECT_GE(Watchdog::Default().dumps_written(), 1u);
    bool dump_found = false;
    const std::string bb = dir + "/blackbox";
    if (std::filesystem::exists(bb)) {
      for (const auto& e : std::filesystem::directory_iterator(bb)) {
        std::ifstream in(e.path());
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string report = ss.str();
        if (report.find("DORADB_BLACKBOX v1") != std::string::npos &&
            report.find("== heatmap ==") != std::string::npos &&
            report.find("== metrics ==") != std::string::npos &&
            report.find("== trace ==") != std::string::npos) {
          dump_found = true;
        }
      }
    }
    EXPECT_TRUE(dump_found) << "no complete blackbox report under " << bb;

    // Once the action finishes and the executor beats again, health
    // recovers — the stall was transient, not latched.
    bool recovered = false;
    for (int i = 0; i < 100 && !recovered; ++i) {
      recovered = HttpGet(db.obs_port(), "/healthz").first == 200;
      SleepMs(10);
    }
    EXPECT_TRUE(recovered);

    engine.Stop();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace obs
}  // namespace doradb
