// Tests for the lock-free executor-inbox substrate: the intrusive MPSC
// queue (multi-producer FIFO, park/wake races, stop delivery) and the
// global ticket line that replaces the §4.2.3 ordered-latch enqueue
// (including the deadlock-shaped interleaving it must rule out).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "dora/ticket.h"
#include "util/mpsc_queue.h"

namespace doradb {
namespace {

struct TestNode : MpscNode {
  uint32_t producer = 0;
  uint64_t seq = 0;
};

// ------------------------------------------------------------- MpscQueue

TEST(MpscQueueTest, DrainReturnsFifo) {
  MpscQueue q;
  TestNode nodes[5];
  for (uint64_t i = 0; i < 5; ++i) {
    nodes[i].seq = i;
    q.Push(&nodes[i]);
  }
  MpscNode* chain = q.TryDrain();
  uint64_t expect = 0;
  while (chain != nullptr) {
    EXPECT_EQ(static_cast<TestNode*>(chain)->seq, expect++);
    chain = chain->next;
  }
  EXPECT_EQ(expect, 5u);
  EXPECT_EQ(q.TryDrain(), nullptr);
}

TEST(MpscQueueTest, MultiProducerPerProducerFifo) {
  constexpr uint32_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  MpscQueue q;
  std::vector<std::vector<TestNode>> nodes(kProducers);
  for (uint32_t p = 0; p < kProducers; ++p) {
    nodes[p].resize(kPerProducer);
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      nodes[p][i].producer = p;
      nodes[p][i].seq = i;
    }
  }
  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) q.Push(&nodes[p][i]);
    });
  }
  // Consumer: mix parked and non-parked drains while producers run.
  uint64_t got = 0;
  uint64_t next_seq[kProducers] = {0, 0, 0, 0};
  while (got < kProducers * kPerProducer) {
    MpscNode* chain = q.TryDrain();
    if (chain == nullptr) chain = q.Park(/*timeout_us=*/1000);
    while (chain != nullptr) {
      auto* n = static_cast<TestNode*>(chain);
      chain = chain->next;
      // The batch is globally oldest-first, so each producer's items must
      // appear in strictly increasing sequence order.
      EXPECT_EQ(n->seq, next_seq[n->producer])
          << "per-producer FIFO violated for producer " << n->producer;
      next_seq[n->producer] = n->seq + 1;
      ++got;
    }
  }
  for (auto& t : producers) t.join();
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

TEST(MpscQueueTest, ParkTimesOutWhenIdle) {
  MpscQueue q;
  EXPECT_EQ(q.Park(/*timeout_us=*/2000), nullptr);
  // The timed-out sentinel must have been retracted: a plain push must not
  // think the consumer is still parked forever, and the item must arrive.
  TestNode n;
  q.Push(&n);
  EXPECT_EQ(q.TryDrain(), &n);
}

TEST(MpscQueueTest, ParkWakesOnPush) {
  MpscQueue q;
  TestNode n;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(q.Push(&n)) << "push onto a parked consumer must wake it";
  });
  MpscNode* chain = q.Park(/*timeout_us=*/-1);
  EXPECT_EQ(chain, &n);
  producer.join();
  EXPECT_GE(q.wakeups(), 1u);
}

TEST(MpscQueueTest, CloseParkRaceDeliversEverythingOnce) {
  // Producers hammer a consumer that parks with tiny timeouts; a stop node
  // lands somewhere in the middle. Every node (including the stop) must be
  // delivered exactly once and the consumer must terminate.
  constexpr uint32_t kProducers = 3;
  constexpr uint64_t kPerProducer = 5000;
  MpscQueue q;
  std::vector<std::vector<TestNode>> nodes(kProducers);
  for (uint32_t p = 0; p < kProducers; ++p) {
    nodes[p].resize(kPerProducer);
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      nodes[p][i].producer = p + 1;  // 0 marks the stop node
      nodes[p][i].seq = i;
    }
  }
  TestNode stop_node;  // producer == 0
  std::atomic<uint64_t> delivered{0};
  std::atomic<bool> saw_stop{false};
  std::thread consumer([&] {
    bool stop = false;
    for (;;) {
      MpscNode* chain = q.TryDrain();
      if (chain == nullptr) {
        if (stop) return;  // drained empty after stop: done
        chain = q.Park(/*timeout_us=*/100);
        if (chain == nullptr) continue;
      }
      while (chain != nullptr) {
        auto* n = static_cast<TestNode*>(chain);
        chain = chain->next;
        if (n->producer == 0) {
          EXPECT_FALSE(saw_stop.exchange(true)) << "stop delivered twice";
          stop = true;
        } else {
          delivered.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) q.Push(&nodes[p][i]);
    });
  }
  for (auto& t : producers) t.join();
  q.Push(&stop_node);
  consumer.join();
  EXPECT_TRUE(saw_stop.load());
  EXPECT_EQ(delivered.load(), uint64_t{kProducers} * kPerProducer);
}

// ------------------------------------------------------------ TicketLine

TEST(TicketLineTest, HorizonAdvancesOnlyOverConsecutivePublishes) {
  dora::TicketLine line(64);
  const uint64_t t1 = line.Take();
  const uint64_t t2 = line.Take();
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);
  EXPECT_EQ(line.horizon(), 0u);
  line.Publish(t2);  // out of order: a gap at t1 pins the horizon
  EXPECT_EQ(line.horizon(), 0u);
  line.Publish(t1);  // fills the gap; the horizon rolls over both
  EXPECT_EQ(line.horizon(), 2u);
  const uint64_t t3 = line.Take();
  line.Publish(t3);
  EXPECT_EQ(line.horizon(), 3u);
}

TEST(TicketLineTest, ConcurrentPublishersConverge) {
  dora::TicketLine line(1u << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) line.Publish(line.Take());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(line.horizon(), uint64_t{kThreads} * kPerThread);
}

// The §4.2.3 property the tickets must restore: two multi-partition
// transactions must not interleave into a deadlock-shaped admission order.
// Adversarial schedule: T2 (later ticket) gets BOTH its enqueues in before
// T1 lands anywhere — with naive lock-free queues, executor 1 would admit
// T2 first while executor 2 admits T1 first, and the two transactions
// would block each other forever. The admission rule — defer a ticketed
// action until the horizon covers it, then drain once more and admit in
// ticket order — forces both executors to admit T1 before T2.
TEST(TicketLineTest, DeadlockShapedInterleavingIsReordered) {
  dora::TicketLine line(64);
  MpscQueue inbox[2];
  struct TicketedNode : MpscNode {
    uint64_t ticket = 0;
    int txn = 0;
  };
  TicketedNode t1_on_e0, t1_on_e1, t2_on_e0, t2_on_e1;

  // Dispatcher A takes its ticket first but is "preempted" mid-dispatch.
  const uint64_t ta = line.Take();
  // Dispatcher B dispatches T2 completely: both enqueues + publish.
  const uint64_t tb = line.Take();
  t2_on_e0.ticket = t2_on_e1.ticket = tb;
  t2_on_e0.txn = t2_on_e1.txn = 2;
  inbox[0].Push(&t2_on_e0);
  inbox[1].Push(&t2_on_e1);
  line.Publish(tb);

  // Executor 0 drains now: it sees only T2, whose ticket is NOT covered by
  // the horizon (T1 is still unpublished) — it must defer, not admit.
  auto drain_tickets = [](MpscQueue& q, std::vector<TicketedNode*>* out) {
    for (MpscNode* c = q.TryDrain(); c != nullptr;) {
      MpscNode* next = c->next;
      out->push_back(static_cast<TicketedNode*>(c));
      c = next;
    }
  };
  std::vector<TicketedNode*> deferred0;
  drain_tickets(inbox[0], &deferred0);
  ASSERT_EQ(deferred0.size(), 1u);
  EXPECT_EQ(deferred0[0]->txn, 2);
  EXPECT_LT(line.horizon(), deferred0[0]->ticket)
      << "T2 must not be admissible while T1 is unpublished";

  // Dispatcher A resumes: enqueues T1 everywhere and publishes.
  t1_on_e0.ticket = t1_on_e1.ticket = ta;
  t1_on_e0.txn = t1_on_e1.txn = 1;
  inbox[0].Push(&t1_on_e0);
  inbox[1].Push(&t1_on_e1);
  line.Publish(ta);
  ASSERT_GE(line.horizon(), tb);

  // Executor 0 observes the horizon, drains ONCE MORE (the admission
  // rule), and admits in ticket order: T1 strictly before T2.
  drain_tickets(inbox[0], &deferred0);
  std::stable_sort(deferred0.begin(), deferred0.end(),
                   [](const TicketedNode* a, const TicketedNode* b) {
                     return a->ticket < b->ticket;
                   });
  ASSERT_EQ(deferred0.size(), 2u);
  EXPECT_EQ(deferred0[0]->txn, 1);
  EXPECT_EQ(deferred0[1]->txn, 2);

  // Executor 1 drains fresh and admits the same order: no cycle possible.
  std::vector<TicketedNode*> deferred1;
  drain_tickets(inbox[1], &deferred1);
  std::stable_sort(deferred1.begin(), deferred1.end(),
                   [](const TicketedNode* a, const TicketedNode* b) {
                     return a->ticket < b->ticket;
                   });
  ASSERT_EQ(deferred1.size(), 2u);
  EXPECT_EQ(deferred1[0]->txn, 1);
  EXPECT_EQ(deferred1[1]->txn, 2);
}

// ------------------------------------------- engine-level integration

TEST(InboxEngineTest, ArenaRecyclesContextsAndCountsBatches) {
  Database db;
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  dora::DoraEngine engine(&db);
  engine.RegisterTable(table, 100, 2);
  engine.Start();
  for (int i = 0; i < 200; ++i) {
    auto dtxn = engine.BeginTxn();
    dora::FlowGraph g;
    g.AddPhase()
        .AddAction(table, 10, dora::LocalMode::kX,
                   [](dora::ActionEnv&) { return Status::OK(); })
        .AddAction(table, 90, dora::LocalMode::kX,
                   [](dora::ActionEnv&) { return Status::OK(); });
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  }
  const auto s = engine.CollectInboxStats();
  EXPECT_EQ(engine.txns_committed(), 200u);
  EXPECT_GE(s.actions, 400u);
  EXPECT_GT(s.batches, 0u);
  EXPECT_GE(s.items, s.batches);
  EXPECT_GT(s.tickets, 0u) << "two-executor phases must take tickets";
  // A closed loop reuses contexts: far fewer allocations than txns, and
  // recycling observed.
  EXPECT_LT(s.arena_allocs, 50u);
  EXPECT_GT(s.arena_recycles, 100u);
  engine.Stop();
}

TEST(InboxEngineTest, PinnedExecutorsRunTransactions) {
  Database db;
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  dora::DoraEngine::Options opts;
  opts.pin_threads = true;
  dora::DoraEngine engine(&db, opts);
  engine.RegisterTable(table, 100, 2);
  engine.Start();
  for (int i = 0; i < 50; ++i) {
    auto dtxn = engine.BeginTxn();
    dora::FlowGraph g;
    g.AddPhase().AddAction(table, static_cast<uint64_t>(i % 100),
                           dora::LocalMode::kX,
                           [](dora::ActionEnv&) { return Status::OK(); });
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  }
  EXPECT_EQ(engine.txns_committed(), 50u);
  engine.Stop();
}

}  // namespace
}  // namespace doradb
