// Property-based, parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across sizes, thread counts, and random
// schedules rather than for one hand-picked input.

#include <algorithm>
#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace {

// ---------------------------------------------------------------- B+Tree

// Property: after inserting N random keys and deleting a random subset, the
// tree contains exactly the surviving set, in order, and passes its own
// integrity check — for any N.
class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, InsertDeleteSetSemantics) {
  const int n = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  BTree tree(&pool, 0, /*unique=*/true);
  Rng rng(n);

  std::map<uint64_t, uint64_t> model;  // reference implementation
  for (int i = 0; i < n; ++i) {
    const uint64_t k = rng.UniformInt(uint64_t{0}, uint64_t(n) * 4);
    KeyBuilder kb;
    kb.Add64(k);
    const Status s =
        tree.Insert(kb.View(), IndexEntry{Rid{PageId(i), 0}, k, false});
    if (model.count(k) != 0) {
      EXPECT_TRUE(s.IsDuplicate()) << "unique index must reject dup " << k;
    } else if (s.ok()) {
      model[k] = k;
    }
  }
  // Delete a random half.
  std::vector<uint64_t> keys;
  for (const auto& [k, v] : model) keys.push_back(k);
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    KeyBuilder kb;
    kb.Add64(keys[i]);
    ASSERT_TRUE(tree.Remove(kb.View(), Rid{}).ok());
    model.erase(keys[i]);
  }
  // The tree must now equal the model, in order.
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree.Scan("", "", [&](std::string_view, const IndexEntry& e) {
    seen.push_back(e.aux);
    return true;
  }).ok());
  std::vector<uint64_t> expect;
  for (const auto& [k, v] : model) expect.push_back(k);
  EXPECT_EQ(seen, expect);
  EXPECT_EQ(tree.num_entries(), model.size());
  EXPECT_TRUE(tree.CheckIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreePropertyTest,
                         ::testing::Values(10, 100, 1000, 5000, 20000));

// Property: range scans agree with the model for random ranges.
class BTreeRangePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRangePropertyTest, RandomRangeScansMatchModel) {
  const int n = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  BTree tree(&pool, 0, true);
  Rng rng(n * 7 + 1);
  std::map<uint64_t, bool> model;
  for (int i = 0; i < n; ++i) {
    const uint64_t k = rng.UniformInt(uint64_t{0}, uint64_t(n) * 2);
    KeyBuilder kb;
    kb.Add64(k);
    if (tree.Insert(kb.View(), IndexEntry{Rid{1, 0}, k, false}).ok()) {
      model[k] = true;
    }
  }
  for (int trial = 0; trial < 32; ++trial) {
    uint64_t lo = rng.UniformInt(uint64_t{0}, uint64_t(n) * 2);
    uint64_t hi = rng.UniformInt(uint64_t{0}, uint64_t(n) * 2);
    if (lo > hi) std::swap(lo, hi);
    KeyBuilder klo, khi;
    klo.Add64(lo);
    khi.Add64(hi);
    size_t got = 0;
    ASSERT_TRUE(tree.Scan(klo.View(), khi.View(),
                          [&](std::string_view, const IndexEntry&) {
                            ++got;
                            return true;
                          }).ok());
    const size_t expect = static_cast<size_t>(std::distance(
        model.lower_bound(lo), model.lower_bound(hi)));
    EXPECT_EQ(got, expect) << "[" << lo << "," << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeRangePropertyTest,
                         ::testing::Values(50, 500, 5000));

// ------------------------------------------------------------- Histogram

// Property: percentiles are monotone and bracket min/max for any dataset.
class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, PercentilesMonotoneAndBounded) {
  Histogram h;
  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.UniformInt(uint64_t{1}, GetParam()));
  }
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_GE(h.Percentile(0), h.Min() / 2);
  EXPECT_LE(h.Percentile(100), h.Max() * 2);
  EXPECT_GE(h.Mean(), static_cast<double>(h.Min()));
  EXPECT_LE(h.Mean(), static_cast<double>(h.Max()));
}

INSTANTIATE_TEST_SUITE_P(Ranges, HistogramPropertyTest,
                         ::testing::Values(10, 1000, 1000000, 4000000000ull));

// ------------------------------------------------------ Zipf / NURand RNG

class ZipfPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPropertyTest, SkewOrderingHolds) {
  const double theta = GetParam();
  Rng rng(7);
  ZipfGenerator zipf(1000, theta);
  std::vector<uint64_t> counts(1001, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    counts[v]++;
  }
  // Rank 1 must be the most frequent for any skew > 0.3.
  const uint64_t top = *std::max_element(counts.begin() + 1, counts.end());
  EXPECT_EQ(counts[1], top);
  // Head outweighs the uniform share.
  uint64_t head = 0;
  for (int i = 1; i <= 100; ++i) head += counts[i];
  EXPECT_GT(head, uint64_t(50000 * 100 / 1000));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfPropertyTest,
                         ::testing::Values(0.5, 0.8, 0.99));

// --------------------------------------------- DORA serialization property

// Property: N clients × M increments through per-key X actions lose no
// updates, for any executor count — the thread-local locking must be
// airtight regardless of partitioning.
class DoraExecutorSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DoraExecutorSweepTest, NoLostUpdatesAnyExecutorCount) {
  const uint32_t executors = GetParam();
  Database db;
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  dora::DoraEngine engine(&db);
  engine.RegisterTable(table, 64, executors);
  engine.Start();

  constexpr int kKeys = 8, kThreads = 4, kIters = 60;
  Rid rids[kKeys];
  {
    auto dtxn = engine.BeginTxn();
    dora::FlowGraph g;
    g.AddPhase();
    for (int k = 0; k < kKeys; ++k) {
      g.AddAction(table, uint64_t(k * 8), dora::LocalMode::kX,
                  [&db, &rids, k, table](dora::ActionEnv& env) {
                    return env.db->Insert(env.txn, table, "00000000",
                                          &rids[k], AccessOptions::RidOnly());
                  });
    }
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < kIters; ++i) {
        const int k = static_cast<int>(rng.UniformInt(uint64_t{0},
                                                      uint64_t{kKeys - 1}));
        auto dtxn = engine.BeginTxn();
        dora::FlowGraph g;
        g.AddPhase().AddAction(
            table, uint64_t(k * 8), dora::LocalMode::kX,
            [&, k](dora::ActionEnv& env) -> Status {
              std::string val;
              DORADB_RETURN_NOT_OK(env.db->Read(env.txn, table, rids[k],
                                                &val, AccessOptions::NoCc()));
              char buf[9];
              std::snprintf(buf, sizeof(buf), "%08lu",
                            std::stoul(val) + 1);
              return env.db->Update(env.txn, table, rids[k],
                                    std::string_view(buf, 8),
                                    AccessOptions::NoCc());
            });
        if (!engine.Run(dtxn, std::move(g)).ok()) failures++;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  uint64_t total = 0;
  for (int k = 0; k < kKeys; ++k) {
    std::string val;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[k], &val).ok());
    total += std::stoul(val);
  }
  EXPECT_EQ(total, uint64_t(kThreads * kIters)) << "lost updates";
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Executors, DoraExecutorSweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ------------------------------------------- TPC-B invariant under sweep

// Property: the TPC-B balance invariant survives any client count on
// either engine.
struct TpcbSweepParam {
  uint32_t clients;
  bool dora;
};

class TpcbInvariantSweepTest
    : public ::testing::TestWithParam<TpcbSweepParam> {};

TEST_P(TpcbInvariantSweepTest, BalancesAlwaysAgree) {
  const TpcbSweepParam p = GetParam();
  Database::Options dbo;
  dbo.lock.wait_timeout_us = 500000;
  Database db(dbo);
  tpcb::TpcbWorkload::Config cfg;
  cfg.branches = 3;
  cfg.tellers_per_branch = 4;
  cfg.accounts_per_branch = 100;
  tpcb::TpcbWorkload workload(&db, cfg);
  ASSERT_TRUE(workload.Load().ok());
  dora::DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < p.clients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 50; ++i) {
        if (p.dora) {
          (void)workload.RunDora(&engine, 0, rng);
        } else {
          (void)workload.RunBaseline(0, rng);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_TRUE(workload.CheckConsistency().ok())
      << (p.dora ? "dora" : "baseline") << " clients=" << p.clients;
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TpcbInvariantSweepTest,
    ::testing::Values(TpcbSweepParam{1, false}, TpcbSweepParam{4, false},
                      TpcbSweepParam{8, false}, TpcbSweepParam{1, true},
                      TpcbSweepParam{4, true}, TpcbSweepParam{8, true}));

// ------------------------------------------------------ SlottedPage fuzz

// Property: a random insert/delete/update schedule never corrupts the page
// (all surviving records read back intact) for any record size.
class SlottedPageFuzzTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SlottedPageFuzzTest, RandomScheduleKeepsRecordsIntact) {
  const size_t rec_size = GetParam();
  alignas(8) uint8_t buf[kPageSize];
  SlottedPage page(buf);
  page.Init(1, 1);
  Rng rng(rec_size);
  std::map<SlotId, std::string> model;
  for (int step = 0; step < 2000; ++step) {
    const uint64_t dice = rng.UniformInt(uint64_t{0}, uint64_t{9});
    if (dice < 5) {
      const std::string rec = rng.AString(rec_size / 2, rec_size);
      SlotId slot;
      if (page.Insert(rec, &slot).ok()) {
        model[slot] = rec;
      }
    } else if (dice < 8 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(uint64_t{0},
                                      uint64_t(model.size() - 1)));
      ASSERT_TRUE(page.Delete(it->first).ok());
      model.erase(it);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(uint64_t{0},
                                      uint64_t(model.size() - 1)));
      const std::string rec = rng.AString(rec_size / 2, rec_size);
      if (page.Update(it->first, rec).ok()) {
        it->second = rec;
      }
    }
    if (step % 256 == 0) {
      for (const auto& [slot, rec] : model) {
        std::string_view out;
        ASSERT_TRUE(page.Get(slot, &out).ok());
        ASSERT_EQ(out, rec) << "slot " << slot << " step " << step;
      }
      ASSERT_EQ(page.record_count(), model.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RecordSizes, SlottedPageFuzzTest,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
}  // namespace doradb
