// Deterministic migration test harness for live repartitioning:
//
//  1. The shared Zipfian skew generator the benches feed from
//     DORADB_SKEW_THETA is pinned (deterministic per seed, hot-set mass in
//     the expected band) so the skew the controller reacts to is itself
//     reproducible.
//  2. The RebalanceController's decisions are driven by scripted heatmap
//     windows pushed into a private LoadHeatmap (no threads, no timing):
//     a hot single-range executor splits at the midpoint, a hot
//     multi-range executor moves its widest range, a below-gap window
//     does nothing, and each window seq is decided at most once.
//  3. The ticket-fenced cutover serializes against live conflicting load:
//     TPC-B transactions straddle ~20 migrations of the account table and
//     the balance invariant holds with zero failed transactions.
//  4. A split routing table written through the durable catalog is
//     recovered by a second lifetime via RegisterFromCatalog alone — no
//     re-registration by workload code.

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "dora/rebalance.h"
#include "util/rng.h"
#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace dora {
namespace {

Database::Options SmallDb() {
  Database::Options o;
  o.buffer_frames = 2048;
  o.lock.wait_timeout_us = 500000;
  return o;
}

std::string TempDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_rebalance_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Database::Options DurableOpts(const std::string& dir) {
  Database::Options o;
  o.buffer_frames = 512;
  o.data_dir = dir;
  o.log_backend = LogBackendKind::kPartitioned;
  o.log_partitions = 2;
  o.log_segment_bytes = 4096;
  return o;
}

// One scripted heatmap window: busy fractions per GLOBAL executor index.
obs::HeatmapWindow Window(std::vector<double> busy_by_global) {
  obs::HeatmapWindow w;
  w.span_ms = 100.0;
  for (uint32_t g = 0; g < busy_by_global.size(); ++g) {
    obs::ExecutorSample s;
    s.executor = g;
    s.busy_frac = busy_by_global[g];
    w.rows.push_back(s);
  }
  return w;
}

// ------------------------------------------- satellite 1: pinned skew

TEST(RebalanceTest, ZipfSkewGeneratorPinned) {
  constexpr uint64_t kN = 10000;
  constexpr double kTheta = 0.9;
  ZipfGenerator zipf(kN, kTheta);

  // Determinism: two same-seed streams must be identical (the workload
  // configs share one generator across per-thread Rngs, so Next() must be
  // a pure function of the Rng stream).
  {
    ZipfGenerator z2(kN, kTheta);
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(zipf.Next(a), z2.Next(b)) << "draw " << i;
    }
  }

  // Distribution pin: under theta=0.9 the hottest 1% of ranks should
  // carry a large, stable share of the mass and the coldest half very
  // little. Bands are deliberately loose — they catch a broken
  // implementation (uniform, inverted, off-by-one rank), not sampling
  // noise.
  constexpr int kDraws = 200000;
  Rng rng(7);
  uint64_t top1 = 0, bottom_half = 0, min_seen = kN, max_seen = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, kN);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
    if (v <= kN / 100) ++top1;
    if (v > kN / 2) ++bottom_half;
  }
  const double top1_share = static_cast<double>(top1) / kDraws;
  const double bottom_share = static_cast<double>(bottom_half) / kDraws;
  EXPECT_GT(top1_share, 0.30) << "hot 1% of ranks too cold for Zipf(0.9)";
  EXPECT_LT(top1_share, 0.70);
  EXPECT_LT(bottom_share, 0.20) << "cold half too hot for Zipf(0.9)";
  EXPECT_EQ(min_seen, 1u) << "rank 1 must be the hottest value";
  EXPECT_GT(max_seen, kN / 2) << "tail must still be reachable";
}

// --------------------------- satellite 2a: scripted-heatmap decisions

class ScriptedRebalanceTest : public ::testing::Test {
 protected:
  ScriptedRebalanceTest() : db_(SmallDb()) {
    EXPECT_TRUE(db_.catalog()->CreateTable("t", &table_).ok());
    engine_ = std::make_unique<DoraEngine>(&db_);
    engine_->RegisterTable(table_, /*key_space=*/1000, /*executors=*/2);
    engine_->Start();
    RebalanceController::Options o;
    o.min_busy_gap = 0.25;
    o.sweep = false;     // scripted windows only
    o.heatmap = &hm_;    // private: nothing leaks across tests
    ctrl_ = std::make_unique<RebalanceController>(engine_.get(), o);
  }
  ~ScriptedRebalanceTest() override { engine_->Stop(); }

  Database db_;
  TableId table_;
  obs::LoadHeatmap hm_;
  std::unique_ptr<DoraEngine> engine_;
  std::unique_ptr<RebalanceController> ctrl_;
};

TEST_F(ScriptedRebalanceTest, HotSingleRangeSplitsAtMidpoint) {
  // Executor 0 owns [0,500) and is pinned; executor 1 idles.
  hm_.Push(Window({0.95, 0.05}));
  ASSERT_TRUE(ctrl_->StepOnce());
  auto rule = engine_->routing_of(table_)->Current();
  ASSERT_EQ(rule->boundaries.size(), 2u);
  EXPECT_EQ(rule->boundaries[0], 250u) << "split at the hot range midpoint";
  EXPECT_EQ(rule->boundaries[1], 500u);
  ASSERT_EQ(rule->executor_of_dataset.size(), 3u);
  EXPECT_EQ(rule->executor_of_dataset[0], 0u);
  EXPECT_EQ(rule->executor_of_dataset[1], 1u) << "upper half handed over";
  EXPECT_EQ(rule->executor_of_dataset[2], 1u);
  EXPECT_EQ(rule->version, 1u);
  EXPECT_EQ(ctrl_->splits(), 1u);
  EXPECT_EQ(ctrl_->moves(), 0u);

  // The published rule routes live traffic: keys below the new boundary
  // stay on 0, the handed-over quarter lands on 1.
  EXPECT_EQ(engine_->RouteIndex(table_, 100), 0u);
  EXPECT_EQ(engine_->RouteIndex(table_, 300), 1u);
  std::atomic<uint32_t> ran_on{999};
  auto dtxn = engine_->BeginTxn();
  FlowGraph g;
  g.AddPhase().AddAction(table_, 300, LocalMode::kX, [&](ActionEnv& env) {
    ran_on = env.self->index_in_table();
    return Status::OK();
  });
  ASSERT_TRUE(engine_->Run(dtxn, std::move(g)).ok());
  EXPECT_EQ(ran_on.load(), 1u);
}

TEST_F(ScriptedRebalanceTest, HotMultiRangeOwnerMovesWidestRange) {
  // First migration: split makes executor 1 own [250,500) and [500,1000).
  hm_.Push(Window({0.95, 0.05}));
  ASSERT_TRUE(ctrl_->StepOnce());
  // Reverse the skew: executor 1 is now hot and owns two ranges, so the
  // controller must MOVE its widest ([500,1000)) instead of splitting.
  hm_.Push(Window({0.05, 0.95}));
  ASSERT_TRUE(ctrl_->StepOnce());
  auto rule = engine_->routing_of(table_)->Current();
  ASSERT_EQ(rule->boundaries.size(), 2u) << "a move adds no boundary";
  ASSERT_EQ(rule->executor_of_dataset.size(), 3u);
  EXPECT_EQ(rule->executor_of_dataset[0], 0u);
  EXPECT_EQ(rule->executor_of_dataset[1], 1u);
  EXPECT_EQ(rule->executor_of_dataset[2], 0u) << "widest range moved cold";
  EXPECT_EQ(rule->version, 2u);
  EXPECT_EQ(ctrl_->splits(), 1u);
  EXPECT_EQ(ctrl_->moves(), 1u);
  EXPECT_EQ(ctrl_->migrations(), 2u);
}

TEST_F(ScriptedRebalanceTest, BelowGapWindowAndStaleSeqDoNothing) {
  hm_.Push(Window({0.50, 0.40}));  // gap 0.10 < 0.25
  EXPECT_FALSE(ctrl_->StepOnce());
  EXPECT_EQ(ctrl_->migrations(), 0u);
  auto rule = engine_->routing_of(table_)->Current();
  EXPECT_EQ(rule->version, 0u) << "no migration may have happened";

  // An already-consumed window seq is never decided twice, even if its
  // gap would act: push one actionable window, step twice.
  hm_.Push(Window({0.95, 0.05}));
  EXPECT_TRUE(ctrl_->StepOnce());
  EXPECT_FALSE(ctrl_->StepOnce()) << "same window seq consumed twice";
  EXPECT_EQ(ctrl_->migrations(), 1u);
}

TEST_F(ScriptedRebalanceTest, StaleVersionMigrationRejectedBusy) {
  // A migration whose version does not exceed the live rule's loses the
  // race by construction: kBusy, routing unchanged.
  auto stale = std::make_shared<RoutingRule>();
  stale->boundaries = {400};
  stale->executor_of_dataset = {0, 1};
  stale->version = 0;  // == current
  const Status s = engine_->MigrateRoutingRule(table_, stale);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_EQ(engine_->routing_of(table_)->Current()->version, 0u);

  // Structural garbage is rejected before any fence is taken.
  auto bad = std::make_shared<RoutingRule>();
  bad->boundaries = {400, 300};  // not increasing
  bad->executor_of_dataset = {0, 1, 1};
  bad->version = 1;
  const Status rejected = engine_->MigrateRoutingRule(table_, bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(rejected.IsBusy()) << "structural, not a version race";
}

// ------------------- satellite 2b: fence vs. live conflicting actions

TEST(RebalanceTest, TicketFenceCutoverKeepsTpcbInvariants) {
  Database db(SmallDb());
  tpcb::TpcbWorkload::Config cfg;
  cfg.branches = 4;
  cfg.tellers_per_branch = 2;
  cfg.accounts_per_branch = 500;
  cfg.account_executors = 2;
  cfg.other_executors = 1;
  tpcb::TpcbWorkload workload(&db, cfg);
  ASSERT_TRUE(workload.Load().ok());
  DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();

  const TableId account = workload.schema().account;
  const uint64_t key_space = cfg.branches * cfg.accounts_per_branch + 1;
  ASSERT_EQ(engine.key_space_of(account), key_space);

  // Conflicting load: every client updates accounts/tellers/branches while
  // the account table's ownership migrates under it. An action enqueued
  // before the fence's ticket executes under the old rule; one admitted
  // after publication bounces to the new owner — either way the
  // transaction must commit.
  // A cutover can transiently invert ticket-order admission: an action
  // parked under the old rule bounces to the new owner AFTER that owner
  // already granted later-ticketed work, so a wait-for cycle between two
  // in-flight transactions is possible for the migration instant. The
  // §4.2.3 expiry detector bounds it with a Deadlock abort and the client
  // retries — that is the designed protocol, so deadlock aborts are
  // counted but tolerated; any OTHER failure (lost write, stale route
  // executing on a non-owner, broken invariant) fails the test.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> deadlock_retries{0};
  std::mutex fail_mu;
  std::vector<std::string> fail_msgs;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load()) {
        const Status s = workload.RunDora(&engine, 0, rng);
        if (s.IsDeadlock()) {
          deadlock_retries++;  // §4.2.3 detector fired mid-cutover: retry
        } else if (!s.ok()) {
          failures++;
          std::lock_guard<std::mutex> g(fail_mu);
          fail_msgs.push_back(s.ToString());
        }
      }
    });
  }

  // ~20 migrations straddling the live load, alternating the account
  // boundary between the low and high third of the key space. A heavily
  // contested fence can itself be picked off by the §4.2.3 detector (it
  // parks like any other action); the migration then aborted cleanly —
  // rule not installed, locks rolled back — and is simply retried.
  int applied = 0;
  for (int i = 0; i < 20; ++i) {
    Status s;
    for (int attempt = 0; attempt < 10; ++attempt) {
      auto current = engine.routing_of(account)->Current();
      auto rule = std::make_shared<RoutingRule>();
      rule->boundaries = {i % 2 == 0 ? key_space / 3 : 2 * key_space / 3};
      rule->executor_of_dataset = {0, 1};
      rule->version = current->version + 1;
      uint64_t fence_wait_ns = 0;
      s = engine.MigrateRoutingRule(account, rule, &fence_wait_ns);
      if (!s.IsDeadlock()) break;
    }
    ASSERT_TRUE(s.ok()) << "migration " << i << ": " << s.ToString();
    ++applied;
  }
  stop = true;
  for (auto& c : clients) c.join();
  engine.Stop();

  EXPECT_EQ(applied, 20);
  std::string joined;
  for (const std::string& m : fail_msgs) joined += "\n  " + m;
  EXPECT_EQ(failures.load(), 0)
      << "only deadlock-retry is tolerated across a fenced cutover:"
      << joined;
  if (deadlock_retries.load() != 0) {
    std::fprintf(stderr, "note: %d deadlock retr%s during cutover\n",
                 deadlock_retries.load(),
                 deadlock_retries.load() == 1 ? "y" : "ies");
  }
  EXPECT_EQ(engine.routing_of(account)->Current()->version, 20u);
  ASSERT_TRUE(workload.CheckConsistency().ok())
      << "balance invariant broken by a migration";
}

// ----------------- satellite 2c: split survives restart via catalog

TEST(RebalanceTest, SplitRoutingTableRecoveredAcrossLifetimes) {
  const std::string dir = TempDataDir("split_recover");
  const Database::Options opts = DurableOpts(dir);

  // Lifetime 1: register uniform wiring, migrate to a split, run a txn on
  // the handed-over range, die without warning. The split was written
  // through catalog.db at publication, so the kill must not lose it.
  {
    Database db(opts);
    db.log_manager()->BindThisThread(0);
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    DoraEngine engine(&db);
    engine.RegisterTable(table, /*key_space=*/1000, /*executors=*/2);
    ASSERT_TRUE(engine.registration_status().ok())
        << engine.registration_status().ToString();
    engine.Start();

    auto rule = std::make_shared<RoutingRule>();
    rule->boundaries = {250, 500};
    rule->executor_of_dataset = {0, 1, 1};
    rule->version = 1;
    ASSERT_TRUE(engine.MigrateRoutingRule(table, rule).ok());

    std::atomic<uint32_t> ran_on{999};
    auto dtxn = engine.BeginTxn();
    FlowGraph g;
    g.AddPhase().AddAction(table, 300, LocalMode::kX, [&](ActionEnv& env) {
      ran_on = env.self->index_in_table();
      return Status::OK();
    });
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
    EXPECT_EQ(ran_on.load(), 1u);
    engine.Stop();
    db.SimulateKill();
  }

  // Lifetime 2: no workload registration at all — RegisterFromCatalog
  // alone must reproduce the split rule, version included.
  Database db(opts);
  ASSERT_TRUE(db.catalog_load_status().ok())
      << db.catalog_load_status().ToString();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
  const TableId table = db.catalog()->GetTable("t")->id;

  DoraEngine engine(&db);
  ASSERT_EQ(engine.RegisterFromCatalog(), 1u);
  auto rule = engine.routing_of(table)->Current();
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->boundaries.size(), 2u) << "split lost across restart";
  EXPECT_EQ(rule->boundaries[0], 250u);
  EXPECT_EQ(rule->boundaries[1], 500u);
  ASSERT_EQ(rule->executor_of_dataset.size(), 3u);
  EXPECT_EQ(rule->executor_of_dataset[0], 0u);
  EXPECT_EQ(rule->executor_of_dataset[1], 1u);
  EXPECT_EQ(rule->executor_of_dataset[2], 1u);
  EXPECT_EQ(rule->version, 1u);

  engine.Start();
  std::atomic<uint32_t> ran_on{999};
  auto dtxn = engine.BeginTxn();
  FlowGraph g;
  g.AddPhase().AddAction(table, 300, LocalMode::kX, [&](ActionEnv& env) {
    ran_on = env.self->index_in_table();
    return Status::OK();
  });
  ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  EXPECT_EQ(ran_on.load(), 1u)
      << "recovered rule must route like the original";
  engine.Stop();
}

}  // namespace
}  // namespace dora
}  // namespace doradb
