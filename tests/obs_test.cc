// Tests for the observability layer (src/obs/): histogram bucket math and
// percentile interpolation, sharded-counter aggregation under concurrency,
// registry snapshot/delta semantics, JSON round-tripping, the commit-path
// tracer (ring wraparound + the seven lifecycle spans over a real DORA
// run), and the background stats reporter's output format.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace doradb {
namespace obs {
namespace {

// ----------------------------------------------------------- histogram math

TEST(HistogramTest, BucketPlacement) {
  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 0
  h.Record(2);  // bucket 1
  h.Record(3);  // bucket 1
  h.Record(4);  // bucket 2
  h.Record(1024);  // bucket 10
  h.Record(1025);  // bucket 10
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(10), 2u);
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_EQ(h.Sum(), 0u + 1 + 2 + 3 + 4 + 1024 + 1025);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 1025u);
}

TEST(HistogramTest, PercentileWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);  // bucket 9: [512, 1024)
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, 512u) << "p=" << p;
    EXPECT_LE(v, 1024u) << "p=" << p;
  }
}

TEST(HistogramTest, PercentileSeparatesModes) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(8);          // bucket 3
  for (int i = 0; i < 10; ++i) h.Record(1 << 20);    // bucket 20
  EXPECT_LE(h.Percentile(50), 16u);
  EXPECT_GE(h.Percentile(99), 1u << 20);
  EXPECT_LE(h.Percentile(99), 1u << 21);
}

// ------------------------------------------------------------ counter/gauge

TEST(CounterTest, MultiThreadedAggregation) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, GetOrCreateIsStable) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.count");
  Counter* c2 = reg.GetCounter("a.count");
  EXPECT_EQ(c1, c2);
  // A name keeps its first-registered kind; asking for another kind under
  // the same name yields nullptr rather than aliasing.
  EXPECT_EQ(reg.GetGauge("a.count"), nullptr);
  EXPECT_EQ(reg.GetHistogram("a.count"), nullptr);
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("z.last")->Add(1);
  reg.GetGauge("a.first")->Set(-5);
  reg.GetHistogram("m.middle")->Record(100);
  const MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.metrics.size(), 3u);
  EXPECT_EQ(s.metrics[0].name, "a.first");
  EXPECT_EQ(s.metrics[1].name, "m.middle");
  EXPECT_EQ(s.metrics[2].name, "z.last");
  EXPECT_EQ(s.Find("a.first")->value, -5);
  EXPECT_EQ(s.Find("m.middle")->count, 1u);
  EXPECT_EQ(s.Find("z.last")->value, 1);
  EXPECT_EQ(s.Find("missing"), nullptr);
}

TEST(RegistryTest, CallbackMetricsAndUnregister) {
  MetricsRegistry reg;
  std::atomic<int64_t> source{42};
  const uint64_t token = reg.RegisterCallback(
      "cb.value", [&source] { return source.load(); }, MetricType::kGauge,
      "units");
  const MetricsSnapshot s1 = reg.Snapshot();
  ASSERT_NE(s1.Find("cb.value"), nullptr);
  EXPECT_EQ(s1.Find("cb.value")->value, 42);
  EXPECT_EQ(s1.Find("cb.value")->unit, "units");
  reg.Unregister(token);
  EXPECT_EQ(reg.Snapshot().Find("cb.value"), nullptr);
}

TEST(RegistryTest, SnapshotDeltaMath) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("flow");
  Gauge* g = reg.GetGauge("level");
  Histogram* h = reg.GetHistogram("lat");

  c->Add(10);
  g->Set(3);
  h->Record(100);
  h->Record(200);
  const MetricsSnapshot s0 = reg.Snapshot();

  c->Add(5);
  g->Set(7);
  h->Record(1000);
  const MetricsSnapshot s1 = reg.Snapshot();

  const MetricsSnapshot d = s1.Delta(s0);
  // Counters subtract (flow over the window).
  EXPECT_EQ(d.Find("flow")->value, 5);
  // Gauges keep the later level.
  EXPECT_EQ(d.Find("level")->value, 7);
  // Histograms subtract count/sum/buckets; percentiles cover the window —
  // only the 1000ns record (bucket [512, 1024)) falls inside it.
  EXPECT_EQ(d.Find("lat")->count, 1u);
  EXPECT_EQ(d.Find("lat")->sum, 1000u);
  EXPECT_GE(d.Find("lat")->p50, 512u);
  EXPECT_LE(d.Find("lat")->p50, 1024u);
}

TEST(RegistryTest, ResetAllZeroes) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(9);
  reg.GetGauge("g")->Set(9);
  reg.GetHistogram("h")->Record(9);
  reg.ResetAll();
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.Find("c")->value, 0);
  EXPECT_EQ(s.Find("g")->value, 0);
  EXPECT_EQ(s.Find("h")->count, 0u);
}

TEST(RegistryTest, EnableGateToggles) {
  EXPECT_TRUE(MetricsEnabled());  // default on
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
}

// --------------------------------------------------------------------- json

TEST(JsonTest, RoundTripPreservesSummaries) {
  MetricsRegistry reg;
  reg.GetCounter("txn.count", "txns")->Add(123);
  reg.GetGauge("queue.depth", "msgs")->Set(-4);
  Histogram* h = reg.GetHistogram("commit.lat", "ns");
  h->Record(100);
  h->Record(5000);
  const MetricsSnapshot orig = reg.Snapshot();

  MetricsSnapshot parsed;
  ASSERT_TRUE(MetricsSnapshot::FromJson(orig.ToJson(), &parsed).ok());
  EXPECT_EQ(parsed.wall_ms, orig.wall_ms);
  ASSERT_EQ(parsed.metrics.size(), orig.metrics.size());
  for (size_t i = 0; i < orig.metrics.size(); ++i) {
    const MetricValue& a = orig.metrics[i];
    const MetricValue& b = parsed.metrics[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
  }
}

TEST(JsonTest, MalformedInputRejected) {
  MetricsSnapshot out;
  EXPECT_FALSE(MetricsSnapshot::FromJson("", &out).ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json", &out).ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"ts_ms\":1}", &out).ok());
  EXPECT_FALSE(
      MetricsSnapshot::FromJson("{\"ts_ms\":1,\"metrics\":{", &out).ok());
}

// -------------------------------------------------------------------- trace

TEST(TraceTest, RingWrapsKeepingNewest) {
  CommitTracer::Enable(/*ring_size=*/8);
  for (uint64_t id = 1; id <= 20; ++id) {
    CommitTracer::Stamp(id, TraceStage::kDispatch);
  }
  const std::vector<TraceEvent> events = CommitTracer::Dump();
  CommitTracer::Disable();
  ASSERT_EQ(events.size(), 8u) << "ring caps retained events";
  std::set<uint64_t> ids;
  for (const auto& e : events) ids.insert(e.txn_id);
  // Newest stamps survive the wrap, oldest are overwritten.
  EXPECT_TRUE(ids.count(20));
  EXPECT_TRUE(ids.count(13));
  EXPECT_FALSE(ids.count(1));
}

TEST(TraceTest, DisabledStampIsDropped) {
  CommitTracer::Enable(16);
  CommitTracer::Disable();
  CommitTracer::Stamp(7, TraceStage::kDispatch);
  CommitTracer::Enable(16);  // clears rings
  EXPECT_TRUE(CommitTracer::Dump().empty());
  CommitTracer::Disable();
}

// One committed DORA transaction must show every lifecycle span, in order:
// dispatch → enqueue → drain → execute → commit-append → durable → ack.
TEST(TraceTest, SevenSpansForCommittedTxn) {
  Database::Options opts;
  opts.buffer_frames = 1024;
  Database db(opts);
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  dora::DoraEngine engine(&db);
  engine.RegisterTable(table, 100, 2);
  engine.Start();

  CommitTracer::Enable();
  auto dtxn = engine.BeginTxn();
  const uint64_t txn_id = dtxn->txn()->id();
  dora::FlowGraph g;
  g.AddPhase().AddAction(table, 5, dora::LocalMode::kX,
                         [&](dora::ActionEnv& env) {
                           Rid rid;
                           return env.db->Insert(env.txn, table, "payload",
                                                 &rid,
                                                 AccessOptions::RidOnly());
                         });
  ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());

  const std::vector<TraceEvent> events = CommitTracer::Dump();
  const std::string text = CommitTracer::DumpText();
  CommitTracer::Disable();
  engine.Stop();

  std::vector<const TraceEvent*> mine;
  for (const auto& e : events) {
    if (e.txn_id == txn_id) mine.push_back(&e);
  }
  std::set<TraceStage> stages;
  for (const auto* e : mine) stages.insert(e->stage);
  ASSERT_EQ(stages.size(), kNumTraceStages)
      << "expected all seven spans, got:\n"
      << text;
  // Dump() sorts a transaction's events by time; the lifecycle must come
  // out in pipeline order.
  for (size_t i = 1; i < mine.size(); ++i) {
    EXPECT_GE(mine[i]->tsc, mine[i - 1]->tsc);
  }
  EXPECT_EQ(mine.front()->stage, TraceStage::kDispatch);
  EXPECT_EQ(mine.back()->stage, TraceStage::kAck);
  // The text dump names every stage for the sampled transaction.
  for (size_t s = 0; s < kNumTraceStages; ++s) {
    EXPECT_NE(text.find(TraceStageName(static_cast<TraceStage>(s))),
              std::string::npos);
  }
}

// ----------------------------------------------------------------- reporter

TEST(ReporterTest, EmitsParsableStatsLines) {
  MetricsRegistry reg;
  reg.GetCounter("r.count")->Add(3);
  FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    StatsReporter reporter(&reg, /*interval_ms=*/5, out);
    reporter.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    reporter.Stop();
    EXPECT_GE(reporter.lines_emitted(), 1u);
  }
  std::rewind(out);
  char line[1 << 16];
  size_t lines = 0;
  std::string last_reason;
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    std::string s(line);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    // Interval logs may interleave DORADB_HEATMAP lines (piggybacked by
    // the reporter when a heatmap is live); only the STATS lines are
    // schema-checked here.
    if (s.rfind("DORADB_STATS ", 0) != 0) {
      ASSERT_EQ(s.rfind("DORADB_HEATMAP ", 0), 0u) << s;
      continue;
    }
    MetricsSnapshot snap;
    ASSERT_TRUE(
        MetricsSnapshot::FromJson(s.substr(strlen("DORADB_STATS ")), &snap)
            .ok())
        << s;
    ASSERT_NE(snap.Find("r.count"), nullptr);
    EXPECT_EQ(snap.Find("r.count")->value, 3);
    EXPECT_TRUE(snap.reason == "interval" || snap.reason == "final")
        << snap.reason;
    last_reason = snap.reason;
    ++lines;
  }
  std::fclose(out);
  EXPECT_GE(lines, 1u);
  // Stop() always flushes one last line so sub-interval runs report too.
  EXPECT_EQ(last_reason, "final");
}

TEST(ReporterTest, ZeroIntervalStaysIdle) {
  MetricsRegistry reg;
  StatsReporter reporter(&reg, /*interval_ms=*/0);
  reporter.Start();
  reporter.Stop();
  EXPECT_EQ(reporter.lines_emitted(), 0u);
}

TEST(ReporterTest, ShortRunStillEmitsFinalLine) {
  // A run far shorter than one interval must still leave one snapshot
  // behind: Stop() flushes a "final" line.
  MetricsRegistry reg;
  reg.GetCounter("short.count")->Add(7);
  FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    StatsReporter reporter(&reg, /*interval_ms=*/60000, out);
    reporter.Start();
    reporter.Stop();
    EXPECT_EQ(reporter.lines_emitted(), 1u);
  }
  std::rewind(out);
  char line[1 << 16];
  ASSERT_NE(std::fgets(line, sizeof(line), out), nullptr);
  std::string s(line);
  ASSERT_EQ(s.rfind("DORADB_STATS ", 0), 0u) << s;
  if (!s.empty() && s.back() == '\n') s.pop_back();
  MetricsSnapshot snap;
  ASSERT_TRUE(
      MetricsSnapshot::FromJson(s.substr(strlen("DORADB_STATS ")), &snap)
          .ok())
      << s;
  EXPECT_EQ(snap.reason, "final");
  ASSERT_NE(snap.Find("short.count"), nullptr);
  EXPECT_EQ(snap.Find("short.count")->value, 7);
  std::fclose(out);
}

// -------------------------------------------------- windowed percentiles

TEST(JsonTest, ZeroSampleWindowSerializesNullPercentiles) {
  // A Delta() window in which a histogram gained no samples must not
  // report fabricated zero percentiles: they serialize as null and
  // round-trip as "absent".
  MetricsRegistry reg;
  reg.GetHistogram("w.lat_ns", "ns")->Record(4096);
  const MetricsSnapshot s1 = reg.Snapshot();
  const MetricsSnapshot s2 = reg.Snapshot();  // no new samples in between
  const MetricsSnapshot d = s2.Delta(s1);
  const MetricValue* m = d.Find("w.lat_ns");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
  EXPECT_FALSE(m->has_percentiles);

  const std::string json = d.ToJson();
  EXPECT_NE(json.find("\"p50\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":null"), std::string::npos) << json;

  MetricsSnapshot back;
  ASSERT_TRUE(MetricsSnapshot::FromJson(json, &back).ok()) << json;
  const MetricValue* bm = back.Find("w.lat_ns");
  ASSERT_NE(bm, nullptr);
  EXPECT_FALSE(bm->has_percentiles);

  // The lifetime snapshot (count > 0) keeps numeric percentiles.
  const MetricValue* lm = s2.Find("w.lat_ns");
  ASSERT_NE(lm, nullptr);
  EXPECT_TRUE(lm->has_percentiles);
  EXPECT_GE(lm->p50, 4096u);
}

// --------------------------------------------------------------- profiler

// Fill a synthetic stamp card (the card embeds atomics, so it can't be
// returned by value): enqueue→drain = queue_ns, drain→execute = svc_ns.
void FillStamps(StageStamps* s, uint64_t queue_ns, uint64_t svc_ns) {
  s->Reset();
  const double per_ns = Cycles::PerNanosecond();
  const uint64_t base = Cycles::Now();
  s->tsc[static_cast<size_t>(TraceStage::kEnqueue)].store(
      base, std::memory_order_relaxed);
  s->tsc[static_cast<size_t>(TraceStage::kDrain)].store(
      base + static_cast<uint64_t>(queue_ns * per_ns),
      std::memory_order_relaxed);
  s->tsc[static_cast<size_t>(TraceStage::kExecute)].store(
      base + static_cast<uint64_t>((queue_ns + svc_ns) * per_ns),
      std::memory_order_relaxed);
  s->armed = true;
}

TEST(ProfilerTest, SampledHistogramsTrackFullRate) {
  // 1-in-8 sampling must land within tolerance of full-rate profiling on
  // a deterministic workload: gap(id) cycles through 7 values while the
  // sampler keeps every 8th id, so the subsample sees every residue.
  auto& reg = MetricsRegistry::Default();
  Histogram* qh = reg.GetHistogram("prof.gap.queue_wait_ns", "ns");

  auto run = [&](uint32_t sample_n, uint64_t ids) -> double {
    StageGapProfiler::Enable(sample_n);
    const uint64_t count0 = qh->Count();
    const uint64_t sum0 = qh->Sum();
    StageStamps s;
    for (uint64_t id = 0; id < ids; ++id) {
      if (!StageGapProfiler::Sample(id)) continue;
      const uint64_t queue_ns = 1000 + (id % 7) * 300;
      FillStamps(&s, queue_ns, 500);
      StageGapProfiler::RecordTxn(s);
    }
    const uint64_t dc = qh->Count() - count0;
    EXPECT_GT(dc, 0u);
    return dc == 0 ? 0.0
                   : static_cast<double>(qh->Sum() - sum0) /
                         static_cast<double>(dc);
  };

  const double mean_full = run(1, 5600);
  const double mean_sampled = run(8, 5600);
  StageGapProfiler::Disable();
  ASSERT_GT(mean_full, 0.0);
  EXPECT_NEAR(mean_sampled / mean_full, 1.0, 0.25)
      << "full=" << mean_full << " sampled=" << mean_sampled;
}

TEST(ProfilerTest, MissingEndpointsAreSkippedNotZero) {
  auto& reg = MetricsRegistry::Default();
  Histogram* fh = reg.GetHistogram("prof.gap.flush_wait_ns", "ns");
  Histogram* qh = reg.GetHistogram("prof.gap.queue_wait_ns", "ns");
  StageGapProfiler::Enable(1);
  const uint64_t f0 = fh->Count();
  const uint64_t q0 = qh->Count();
  // Only enqueue/drain/execute stamped (an aborted txn that never reached
  // commit-append): the flush gap must gain no sample at all.
  StageStamps s;
  FillStamps(&s, 2000, 700);
  StageGapProfiler::RecordTxn(s);
  StageGapProfiler::Disable();
  EXPECT_EQ(fh->Count(), f0);
  EXPECT_EQ(qh->Count(), q0 + 1);
}

TEST(ProfilerTest, DisabledSamplerSelectsNothing) {
  StageGapProfiler::Disable();
  EXPECT_FALSE(StageGapProfiler::Enabled());
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_FALSE(StageGapProfiler::Sample(id));
  }
}

}  // namespace
}  // namespace obs
}  // namespace doradb
