// Unit tests for the storage substrate: slotted pages, disk manager,
// buffer pool, heap files, and the B+Tree.

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/slotted_page.h"
#include "util/rng.h"

namespace doradb {
namespace {

// ---------------------------------------------------------------- SlottedPage

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buf_) { page_.Init(7, 3); }
  alignas(8) uint8_t buf_[kPageSize];
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitEmpty) {
  EXPECT_EQ(page_.page_id(), 7u);
  EXPECT_EQ(page_.table_id(), 3u);
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.record_count(), 0);
  EXPECT_GT(page_.FreeSpace(), kPageSize - 100);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  SlotId slot;
  ASSERT_TRUE(page_.Insert("hello world", &slot).ok());
  std::string_view out;
  ASSERT_TRUE(page_.Get(slot, &out).ok());
  EXPECT_EQ(out, "hello world");
  EXPECT_EQ(page_.record_count(), 1);
}

TEST_F(SlottedPageTest, GetEmptySlotFails) {
  std::string_view out;
  EXPECT_TRUE(page_.Get(0, &out).IsNotFound());
  EXPECT_TRUE(page_.Get(99, &out).IsNotFound());
}

TEST_F(SlottedPageTest, DeleteFreesSlotForReuse) {
  SlotId a, b;
  ASSERT_TRUE(page_.Insert("aaaa", &a).ok());
  ASSERT_TRUE(page_.Insert("bbbb", &b).ok());
  ASSERT_TRUE(page_.Delete(a).ok());
  EXPECT_EQ(page_.record_count(), 1);
  SlotId c;
  ASSERT_TRUE(page_.Insert("cccc", &c).ok());
  EXPECT_EQ(c, a) << "freed slot should be reused";
}

TEST_F(SlottedPageTest, DeleteEmptySlotFails) {
  EXPECT_TRUE(page_.Delete(0).IsNotFound());
}

TEST_F(SlottedPageTest, InsertAtOccupiedSlotIsBusy) {
  // The physical conflict of paper §4.2.1: T1 deletes, T2 inserts into the
  // freed slot, T1's rollback cannot reclaim it.
  SlotId a;
  ASSERT_TRUE(page_.Insert("victim", &a).ok());
  ASSERT_TRUE(page_.Delete(a).ok());
  SlotId b;
  ASSERT_TRUE(page_.Insert("usurper", &b).ok());
  ASSERT_EQ(a, b);
  EXPECT_TRUE(page_.InsertAt(a, "victim").IsBusy());
}

TEST_F(SlottedPageTest, InsertAtRestoresDeletedRecord) {
  SlotId a;
  ASSERT_TRUE(page_.Insert("original", &a).ok());
  ASSERT_TRUE(page_.Delete(a).ok());
  ASSERT_TRUE(page_.InsertAt(a, "original").ok());
  std::string_view out;
  ASSERT_TRUE(page_.Get(a, &out).ok());
  EXPECT_EQ(out, "original");
}

TEST_F(SlottedPageTest, UpdateSameSize) {
  SlotId a;
  ASSERT_TRUE(page_.Insert("12345", &a).ok());
  ASSERT_TRUE(page_.Update(a, "54321").ok());
  std::string_view out;
  ASSERT_TRUE(page_.Get(a, &out).ok());
  EXPECT_EQ(out, "54321");
}

TEST_F(SlottedPageTest, UpdateGrowRelocatesWithinPage) {
  SlotId a;
  ASSERT_TRUE(page_.Insert("short", &a).ok());
  const std::string big(1000, 'x');
  ASSERT_TRUE(page_.Update(a, big).ok());
  std::string_view out;
  ASSERT_TRUE(page_.Get(a, &out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(SlottedPageTest, FillUntilFullThenCompactAfterDeletes) {
  const std::string rec(100, 'r');
  std::vector<SlotId> slots;
  SlotId s;
  while (page_.Insert(rec, &s).ok()) slots.push_back(s);
  ASSERT_GT(slots.size(), 50u);
  EXPECT_TRUE(page_.Insert(rec, &s).IsFull());
  // Delete every other record; compaction should make room again.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
  }
  EXPECT_TRUE(page_.Insert(rec, &s).ok());
}

TEST_F(SlottedPageTest, CompactPreservesRecords) {
  SlotId a, b, c;
  ASSERT_TRUE(page_.Insert("alpha", &a).ok());
  ASSERT_TRUE(page_.Insert("beta", &b).ok());
  ASSERT_TRUE(page_.Insert("gamma", &c).ok());
  ASSERT_TRUE(page_.Delete(b).ok());
  page_.Compact();
  std::string_view out;
  ASSERT_TRUE(page_.Get(a, &out).ok());
  EXPECT_EQ(out, "alpha");
  ASSERT_TRUE(page_.Get(c, &out).ok());
  EXPECT_EQ(out, "gamma");
  EXPECT_TRUE(page_.Get(b, &out).IsNotFound());
}

TEST_F(SlottedPageTest, LsnRoundTrip) {
  page_.set_page_lsn(12345);
  EXPECT_EQ(page_.page_lsn(), 12345u);
}

// ---------------------------------------------------------------- DiskManager

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  const PageId p = disk.AllocatePage();
  std::vector<uint8_t> in(kPageSize, 0xAB), out(kPageSize, 0);
  ASSERT_TRUE(disk.WritePage(p, in.data()).ok());
  ASSERT_TRUE(disk.ReadPage(p, out.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskManagerTest, DeallocatedPageIsReused) {
  DiskManager disk;
  const PageId a = disk.AllocatePage();
  disk.DeallocatePage(a);
  const PageId b = disk.AllocatePage();
  EXPECT_EQ(a, b);
}

TEST(DiskManagerTest, ManyPagesSpanExtents) {
  DiskManager disk;
  std::vector<PageId> ids;
  for (int i = 0; i < 3000; ++i) ids.push_back(disk.AllocatePage());
  std::vector<uint8_t> buf(kPageSize);
  for (PageId id : ids) {
    std::fill(buf.begin(), buf.end(), static_cast<uint8_t>(id % 251));
    ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  }
  for (PageId id : ids) {
    ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
    EXPECT_EQ(buf[0], static_cast<uint8_t>(id % 251));
  }
}

// ----------------------------------------------------------------- BufferPool

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : pool_(&disk_, 16) {}
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndWritable) {
  PageGuard g;
  PageId pid;
  ASSERT_TRUE(pool_.NewPage(&g, &pid).ok());
  g.LatchExclusive();
  SlottedPage page = g.AsSlotted();
  page.Init(pid, 0);
  SlotId s;
  ASSERT_TRUE(page.Insert("data", &s).ok());
  g.MarkDirty();
}

TEST_F(BufferPoolTest, FetchHitsCachedPage) {
  PageGuard g;
  PageId pid;
  ASSERT_TRUE(pool_.NewPage(&g, &pid).ok());
  g.Release();
  PageGuard g2;
  ASSERT_TRUE(pool_.FetchPage(pid, &g2).ok());
  EXPECT_GE(pool_.hits(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Create more pages than frames; early pages must survive eviction.
  std::vector<PageId> pids;
  for (int i = 0; i < 64; ++i) {
    PageGuard g;
    PageId pid;
    ASSERT_TRUE(pool_.NewPage(&g, &pid).ok());
    g.LatchExclusive();
    SlottedPage page = g.AsSlotted();
    page.Init(pid, 0);
    SlotId s;
    ASSERT_TRUE(page.Insert("page" + std::to_string(pid), &s).ok());
    g.MarkDirty();
    pids.push_back(pid);
  }
  EXPECT_GT(pool_.evictions(), 0u);
  for (PageId pid : pids) {
    PageGuard g;
    ASSERT_TRUE(pool_.FetchPage(pid, &g).ok());
    g.LatchShared();
    SlottedPage page = g.AsSlotted();
    std::string_view out;
    ASSERT_TRUE(page.Get(0, &out).ok());
    EXPECT_EQ(out, "page" + std::to_string(pid));
  }
}

TEST_F(BufferPoolTest, AllFramesPinnedFails) {
  std::vector<PageGuard> guards(16);
  for (int i = 0; i < 16; ++i) {
    PageId pid;
    ASSERT_TRUE(pool_.NewPage(&guards[i], &pid).ok());
  }
  PageGuard extra;
  PageId pid;
  EXPECT_TRUE(pool_.NewPage(&extra, &pid).IsFull());
}

TEST_F(BufferPoolTest, WalCallbackInvokedOnDirtyWriteback) {
  Lsn flushed_up_to = 0;
  pool_.SetWalFlushCallback([&](Lsn lsn) {
    flushed_up_to = lsn;
    return true;
  });
  PageGuard g;
  PageId pid;
  ASSERT_TRUE(pool_.NewPage(&g, &pid).ok());
  g.LatchExclusive();
  SlottedPage page = g.AsSlotted();
  page.Init(pid, 0);
  page.set_page_lsn(777);
  g.MarkDirty();
  g.Release();
  ASSERT_TRUE(pool_.FlushPage(pid).ok());
  EXPECT_EQ(flushed_up_to, 777u);
}

TEST_F(BufferPoolTest, ConcurrentFetchStress) {
  std::vector<PageId> pids;
  for (int i = 0; i < 32; ++i) {
    PageGuard g;
    PageId pid;
    ASSERT_TRUE(pool_.NewPage(&g, &pid).ok());
    g.LatchExclusive();
    g.AsSlotted().Init(pid, 0);
    g.MarkDirty();
    pids.push_back(pid);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < 2000; ++i) {
        const PageId pid = pids[rng() % pids.size()];
        PageGuard g;
        if (!pool_.FetchPage(pid, &g).ok()) {
          // Transient kFull is possible when all frames are pinned.
          continue;
        }
        g.LatchShared();
        if (g.AsSlotted().page_id() != pid) failed = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
}

// ------------------------------------------------------------------- HeapFile

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&disk_, 256), heap_(&pool_, 1) {}
  DiskManager disk_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert("record-1", &rid).ok());
  std::string out;
  ASSERT_TRUE(heap_.Get(rid, &out).ok());
  EXPECT_EQ(out, "record-1");
  EXPECT_EQ(heap_.record_count(), 1u);
}

TEST_F(HeapFileTest, InsertManySpansPages) {
  const std::string rec(500, 'z');
  std::vector<Rid> rids;
  for (int i = 0; i < 200; ++i) {
    Rid rid;
    ASSERT_TRUE(heap_.Insert(rec + std::to_string(i), &rid).ok());
    rids.push_back(rid);
  }
  EXPECT_GT(heap_.page_count(), 1u);
  for (int i = 0; i < 200; ++i) {
    std::string out;
    ASSERT_TRUE(heap_.Get(rids[i], &out).ok());
    EXPECT_EQ(out, rec + std::to_string(i));
  }
}

TEST_F(HeapFileTest, UpdateReturnsOldImage) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert("before", &rid).ok());
  std::string old;
  ASSERT_TRUE(heap_.Update(rid, "after!", &old).ok());
  EXPECT_EQ(old, "before");
  std::string out;
  ASSERT_TRUE(heap_.Get(rid, &out).ok());
  EXPECT_EQ(out, "after!");
}

TEST_F(HeapFileTest, DeleteThenGetFails) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert("gone", &rid).ok());
  std::string old;
  ASSERT_TRUE(heap_.Delete(rid, &old).ok());
  EXPECT_EQ(old, "gone");
  std::string out;
  EXPECT_TRUE(heap_.Get(rid, &out).IsNotFound());
  EXPECT_EQ(heap_.record_count(), 0u);
}

TEST_F(HeapFileTest, InsertAtAfterDeleteRestores) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert("abc", &rid).ok());
  ASSERT_TRUE(heap_.Delete(rid).ok());
  ASSERT_TRUE(heap_.InsertAt(rid, "abc").ok());
  std::string out;
  ASSERT_TRUE(heap_.Get(rid, &out).ok());
  EXPECT_EQ(out, "abc");
}

TEST_F(HeapFileTest, InsertAtUsurpedSlotIsBusy) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert("victim", &rid).ok());
  ASSERT_TRUE(heap_.Delete(rid).ok());
  Rid rid2;
  ASSERT_TRUE(heap_.Insert("usurper", &rid2).ok());
  ASSERT_EQ(rid.page_id, rid2.page_id);
  ASSERT_EQ(rid.slot, rid2.slot);
  EXPECT_TRUE(heap_.InsertAt(rid, "victim").IsBusy());
}

TEST_F(HeapFileTest, ScanVisitsAllRecords) {
  std::set<std::string> expect;
  for (int i = 0; i < 100; ++i) {
    Rid rid;
    const std::string rec = "rec" + std::to_string(i);
    ASSERT_TRUE(heap_.Insert(rec, &rid).ok());
    expect.insert(rec);
  }
  std::set<std::string> got;
  ASSERT_TRUE(heap_.Scan([&](const Rid&, std::string_view data) {
    got.insert(std::string(data));
    return true;
  }).ok());
  EXPECT_EQ(got, expect);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    Rid rid;
    ASSERT_TRUE(heap_.Insert("r", &rid).ok());
  }
  int visited = 0;
  ASSERT_TRUE(heap_.Scan([&](const Rid&, std::string_view) {
    return ++visited < 3;
  }).ok());
  EXPECT_EQ(visited, 3);
}

TEST_F(HeapFileTest, ConcurrentInsertsKeepAllRecords) {
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  std::vector<std::vector<Rid>> rids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Rid rid;
        const std::string rec =
            "t" + std::to_string(t) + "i" + std::to_string(i);
        if (heap_.Insert(rec, &rid).ok()) rids[t].push_back(rid);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(heap_.record_count(),
            static_cast<uint64_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(rids[t].size(), static_cast<size_t>(kPerThread));
    std::string out;
    ASSERT_TRUE(heap_.Get(rids[t][0], &out).ok());
    EXPECT_EQ(out, "t" + std::to_string(t) + "i0");
  }
}

// ------------------------------------------------------------------ KeyBuilder

TEST(KeyBuilderTest, OrderPreserving64) {
  KeyBuilder a, b;
  a.Add64(100);
  b.Add64(200);
  EXPECT_LT(a.Str(), b.Str());
}

TEST(KeyBuilderTest, CompositeFieldOrder) {
  KeyBuilder a, b;
  a.Add32(1).Add32(999);
  b.Add32(2).Add32(0);
  EXPECT_LT(a.Str(), b.Str()) << "first field dominates";
}

TEST(KeyBuilderTest, StringFieldPadded) {
  KeyBuilder a, b;
  a.AddString("ABC", 8).Add32(5);
  b.AddString("ABD", 8).Add32(1);
  EXPECT_LT(a.Str(), b.Str());
  EXPECT_EQ(a.size(), 12u);
}

TEST(KeyBuilderTest, PrefixUpperBound) {
  EXPECT_EQ(PrefixUpperBound("abc"), "abd");
  std::string with_ff = std::string("a") + '\xFF';
  EXPECT_EQ(PrefixUpperBound(with_ff), "b");
}

// ---------------------------------------------------------------------- BTree

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 4096), tree_(&pool_, 0, /*unique=*/true) {}

  static std::string Key(uint64_t v) {
    KeyBuilder kb;
    kb.Add64(v);
    return kb.Str();
  }

  DiskManager disk_;
  BufferPool pool_;
  BTree tree_;
};

TEST_F(BTreeTest, InsertProbe) {
  ASSERT_TRUE(tree_.Insert(Key(42), {Rid{1, 2}, 7, false}).ok());
  IndexEntry out;
  ASSERT_TRUE(tree_.Probe(Key(42), &out).ok());
  EXPECT_EQ(out.rid, (Rid{1, 2}));
  EXPECT_EQ(out.aux, 7u);
}

TEST_F(BTreeTest, ProbeMissingIsNotFound) {
  IndexEntry out;
  EXPECT_TRUE(tree_.Probe(Key(1), &out).IsNotFound());
}

TEST_F(BTreeTest, UniqueViolationRejected) {
  ASSERT_TRUE(tree_.Insert(Key(5), {Rid{1, 0}, 0, false}).ok());
  EXPECT_TRUE(tree_.Insert(Key(5), {Rid{2, 0}, 0, false}).IsDuplicate());
}

TEST_F(BTreeTest, RemoveThenProbeFails) {
  ASSERT_TRUE(tree_.Insert(Key(9), {Rid{1, 0}, 0, false}).ok());
  ASSERT_TRUE(tree_.Remove(Key(9), Rid{1, 0}).ok());
  IndexEntry out;
  EXPECT_TRUE(tree_.Probe(Key(9), &out).IsNotFound());
  EXPECT_EQ(tree_.num_entries(), 0u);
}

TEST_F(BTreeTest, ProbeCachedSortedRunReusesLeaves) {
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  // A key-sorted probe run (the epoch-batch access pattern) must answer
  // like Probe while descending only once per leaf.
  LeafCursor cur;
  for (uint64_t i = 0; i < kN; ++i) {
    IndexEntry out;
    ASSERT_TRUE(tree_.ProbeCached(Key(i), &out, &cur).ok()) << i;
    EXPECT_EQ(out.aux, i);
  }
  EXPECT_GT(tree_.descents_saved(), kN / 2)
      << "sorted probes must amortize descents across leaf-mates";
  IndexEntry out;
  EXPECT_TRUE(tree_.ProbeCached(Key(kN + 5), &out, &cur).IsNotFound())
      << "cursor hit on the rightmost leaf must still report misses";
}

TEST_F(BTreeTest, ProbeCachedStaleCursorSurvivesSplits) {
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i * 2), {Rid{PageId(i), 0}, i, false}).ok());
  }
  LeafCursor cur;
  IndexEntry out;
  ASSERT_TRUE(tree_.ProbeCached(Key(10), &out, &cur).ok());
  const uint64_t saved_before = tree_.descents_saved();
  // Structural churn bumps the tree version; the stale cursor must fall
  // back to a full descent (no saved-descent credit) yet stay correct.
  for (uint64_t i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        tree_.Insert(Key(100000 + i), {Rid{PageId(i), 1}, i, false}).ok());
  }
  ASSERT_GT(tree_.splits(), 0u);
  ASSERT_TRUE(tree_.ProbeCached(Key(12), &out, &cur).ok());
  EXPECT_EQ(out.aux, 6u);
  EXPECT_EQ(tree_.descents_saved(), saved_before)
      << "a version-stale cursor must not count as a saved descent";
}

TEST_F(BTreeTest, ManyInsertsSplitAndStaySorted) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        tree_.Insert(Key(i * 7919 % kN * 2 + (i % 2)), {Rid{PageId(i), 0},
                     i, false}).ok())
        << i;
  }
  EXPECT_GT(tree_.splits(), 0u);
  EXPECT_GT(tree_.Height(), 1);
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, SequentialInsertThenFullScanInOrder) {
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  uint64_t expect = 0;
  ASSERT_TRUE(tree_.Scan(Key(0), "", [&](std::string_view,
                                         const IndexEntry& e) {
    EXPECT_EQ(e.aux, expect);
    ++expect;
    return true;
  }).ok());
  EXPECT_EQ(expect, kN);
}

TEST_F(BTreeTest, RangeScanBounds) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree_.Scan(Key(10), Key(20), [&](std::string_view,
                                               const IndexEntry& e) {
    got.push_back(e.aux);
    return true;
  }).ok());
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10u);
  EXPECT_EQ(got.back(), 19u);
}

TEST_F(BTreeTest, DeletedFlagHidesEntryFromProbes) {
  ASSERT_TRUE(tree_.Insert(Key(1), {Rid{1, 0}, 0, false}).ok());
  ASSERT_TRUE(tree_.SetDeleted(Key(1), Rid{1, 0}, true).ok());
  IndexEntry out;
  EXPECT_TRUE(tree_.Probe(Key(1), &out).IsNotFound());
  // ...but ProbeAll(include_deleted) still sees it.
  std::vector<IndexEntry> all;
  ASSERT_TRUE(tree_.ProbeAll(Key(1), &all, /*include_deleted=*/true).ok());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].deleted);
}

TEST_F(BTreeTest, ReinsertOverCommittedDeleteSupersedes) {
  // §4.2.2: transactions "may safely re-insert a new record with the same
  // primary key" — the flagged entry is garbage.
  ASSERT_TRUE(tree_.Insert(Key(1), {Rid{1, 0}, 0, false}).ok());
  ASSERT_TRUE(tree_.SetDeleted(Key(1), Rid{1, 0}, true).ok());
  ASSERT_TRUE(tree_.Insert(Key(1), {Rid{2, 0}, 0, false}).ok());
  IndexEntry out;
  ASSERT_TRUE(tree_.Probe(Key(1), &out).ok());
  EXPECT_EQ(out.rid, (Rid{2, 0}));
  std::vector<IndexEntry> all;
  ASSERT_TRUE(tree_.ProbeAll(Key(1), &all, /*include_deleted=*/true).ok());
  EXPECT_EQ(all.size(), 1u) << "flagged duplicate should have been dropped";
}

TEST_F(BTreeTest, UndeleteRestoresVisibility) {
  ASSERT_TRUE(tree_.Insert(Key(3), {Rid{3, 0}, 0, false}).ok());
  ASSERT_TRUE(tree_.SetDeleted(Key(3), Rid{3, 0}, true).ok());
  ASSERT_TRUE(tree_.SetDeleted(Key(3), Rid{3, 0}, false).ok());
  IndexEntry out;
  EXPECT_TRUE(tree_.Probe(Key(3), &out).ok());
}

TEST_F(BTreeTest, LeafSplitGarbageCollectsDeletedEntries) {
  // Fill leaves, flag a large fraction, keep inserting: GC should reclaim
  // flagged entries instead of splitting forever (§4.2.2).
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  for (uint64_t i = 0; i < kN; i += 2) {
    ASSERT_TRUE(tree_.SetDeleted(Key(i), Rid{PageId(i), 0}, true).ok());
  }
  for (uint64_t i = kN; i < kN + 5000; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  EXPECT_GT(tree_.gc_purged(), 0u);
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, ConcurrentReadersAndWriters) {
  constexpr uint64_t kPre = 5000;
  for (uint64_t i = 0; i < kPre; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (uint64_t i = kPre; i < kPre + 3000; ++i) {
      if (!tree_.Insert(Key(i), {Rid{PageId(i), 0}, i, false}).ok()) {
        failed = true;
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t);
      while (!stop.load()) {
        const uint64_t k = rng.UniformInt(uint64_t{0}, kPre - 1);
        IndexEntry out;
        if (!tree_.Probe(Key(k), &out).ok() || out.aux != k) failed = true;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed);
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
}

// Non-unique index behaviour.
class NonUniqueBTreeTest : public ::testing::Test {
 protected:
  NonUniqueBTreeTest()
      : pool_(&disk_, 2048), tree_(&pool_, 0, /*unique=*/false) {}
  static std::string Key(uint64_t v) {
    KeyBuilder kb;
    kb.Add64(v);
    return kb.Str();
  }
  DiskManager disk_;
  BufferPool pool_;
  BTree tree_;
};

TEST_F(NonUniqueBTreeTest, DuplicateKeysAllowed) {
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(7), {Rid{i, 0}, i, false}).ok());
  }
  std::vector<IndexEntry> all;
  ASSERT_TRUE(tree_.ProbeAll(Key(7), &all).ok());
  EXPECT_EQ(all.size(), 10u);
}

TEST_F(NonUniqueBTreeTest, RemoveSpecificRid) {
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree_.Insert(Key(7), {Rid{i, 0}, i, false}).ok());
  }
  ASSERT_TRUE(tree_.Remove(Key(7), Rid{2, 0}).ok());
  std::vector<IndexEntry> all;
  ASSERT_TRUE(tree_.ProbeAll(Key(7), &all).ok());
  ASSERT_EQ(all.size(), 4u);
  for (const auto& e : all) EXPECT_NE(e.rid, (Rid{2, 0}));
}

TEST_F(NonUniqueBTreeTest, LargeDuplicateRunsSurviveSplits) {
  // Duplicate runs must not break descent: boundary-adjusted splits.
  for (uint64_t key = 0; key < 50; ++key) {
    for (uint32_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(tree_.Insert(Key(key), {Rid{PageId(key * 100 + i), 0},
                               key, false}).ok());
    }
  }
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
  for (uint64_t key = 0; key < 50; ++key) {
    std::vector<IndexEntry> all;
    ASSERT_TRUE(tree_.ProbeAll(Key(key), &all).ok());
    EXPECT_EQ(all.size(), 40u) << "key " << key;
  }
}

// -------------------------------------------------------------------- Catalog

TEST(CatalogTest, CreateTableAndIndex) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  TableId t;
  ASSERT_TRUE(catalog.CreateTable("warehouse", &t).ok());
  IndexId i;
  ASSERT_TRUE(catalog.CreateIndex(t, "wh_pk", true, false, &i).ok());
  EXPECT_NE(catalog.GetTable("warehouse"), nullptr);
  EXPECT_NE(catalog.Heap(t), nullptr);
  EXPECT_NE(catalog.Index(i), nullptr);
  EXPECT_EQ(catalog.GetTable(t)->indexes.size(), 1u);
}

TEST(CatalogTest, DuplicateTableNameRejected) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  TableId t;
  ASSERT_TRUE(catalog.CreateTable("x", &t).ok());
  EXPECT_TRUE(catalog.CreateTable("x", &t).IsDuplicate());
}

TEST(CatalogTest, IndexOnMissingTableRejected) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  IndexId i;
  EXPECT_FALSE(catalog.CreateIndex(99, "idx", true, false, &i).ok());
}

}  // namespace
}  // namespace doradb
