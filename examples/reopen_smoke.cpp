// Self-contained reopen smoke (run by CI): create a TPC-B database in a
// data directory, run transactions on the DORA engine, kill it
// mid-workload, then reopen the bare directory in a fresh "process" that
// never re-declares the schema — catalog.db alone describes it — and
// verify the TPC-B balance invariant plus continued operation.
//
//   $ ./build/reopen_smoke [data_dir]
//
// Exit 0 = every check passed. Any failure prints the offending step and
// exits non-zero, so a regression in the durable-catalog restart contract
// fails the build loudly.

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "util/rng.h"
#include "workloads/tpcb/tpcb.h"

using namespace doradb;

namespace {

[[noreturn]] void Fail(const char* step, const Status& s) {
  std::fprintf(stderr, "reopen_smoke FAILED at %s: %s\n", step,
               s.ToString().c_str());
  std::exit(1);
}

void Check(const char* step, const Status& s) {
  if (!s.ok()) Fail(step, s);
}

Database::Options Opts(const std::string& dir) {
  Database::Options o;
  o.log_backend = LogBackendKind::kPartitioned;
  o.log_partitions = 4;
  o.log.flush_interval_us = 50;
  o.data_dir = dir;
  o.log_segment_bytes = 1 << 16;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "doradb_smoke")
                     .string();
  std::filesystem::remove_all(dir);

  tpcb::TpcbWorkload::Config cfg;
  cfg.branches = 2;
  cfg.tellers_per_branch = 4;
  cfg.accounts_per_branch = 200;
  cfg.account_executors = 2;
  cfg.other_executors = 1;

  // Lifetime 1: schema (declared exactly once, written through to
  // catalog.db), load, DORA transactions, kill mid-workload.
  {
    Database db(Opts(dir));
    tpcb::TpcbWorkload workload(&db, cfg);
    Check("load", workload.Load());
    dora::DoraEngine engine(&db);
    workload.SetupDora(&engine);  // routing config persisted via catalog
    engine.Start();
    Rng rng(42);
    for (int i = 0; i < 300; ++i) {
      Check("dora txn", workload.RunDora(&engine, 0, rng));
    }
    engine.Stop();
    Check("pre-kill consistency", workload.CheckConsistency());
    db.SimulateKill();
    std::printf("[smoke] lifetime 1: loaded, ran 300 txns, killed\n");
  }

  // Lifetime 2: bare directory, fresh process, zero schema knowledge.
  Database db(Opts(dir));
  Check("catalog load", db.catalog_load_status());
  if (db.catalog()->num_tables() != 4) {
    Fail("catalog table count",
         Status::Corruption("expected 4 recovered tables"));
  }
  Check("recover", db.Recover());  // no schema, no rebuild callback

  tpcb::TpcbWorkload workload(&db, cfg);
  Check("attach", workload.Attach());  // bind ids by name only
  Check("post-restart consistency", workload.CheckConsistency());

  dora::DoraEngine engine(&db);
  const uint32_t rewired = engine.RegisterFromCatalog();
  if (rewired != 4) {
    Fail("dora rewiring", Status::Corruption("expected 4 rewired tables"));
  }
  engine.Start();
  Rng rng(43);
  for (int i = 0; i < 300; ++i) {
    Check("post-restart dora txn", workload.RunDora(&engine, 0, rng));
  }
  engine.Stop();
  Check("final consistency", workload.CheckConsistency());
  std::printf(
      "[smoke] lifetime 2: self-contained reopen ok — %zu tables, "
      "%zu indexes, %u dora tables rewired, invariants hold\n",
      db.catalog()->num_tables(), db.catalog()->num_indexes(), rewired);
  std::printf("reopen_smoke OK\n");
  return 0;
}
