// TM1 demo: load the telecom benchmark, run the standard mix on both
// engines for a second each, and print a side-by-side comparison —
// throughput, lock census (Fig. 5 style) and time breakdown (Fig. 2 style).
//
//   $ ./build/examples/tm1_demo [subscribers]

#include <cstdio>
#include <cstdlib>

#include "util/thread_pool.h"
#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"

using namespace doradb;

int main(int argc, char** argv) {
  const uint64_t subscribers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  Database db;
  tm1::Tm1Workload::Config cfg;
  cfg.subscribers = subscribers;
  cfg.executors_per_table = 1;
  tm1::Tm1Workload workload(&db, cfg);
  std::printf("loading TM1 with %lu subscribers...\n",
              static_cast<unsigned long>(subscribers));
  if (!workload.Load().ok()) {
    std::printf("load failed\n");
    return 1;
  }

  dora::DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();

  const uint32_t clients = HardwareContexts() * 2;
  for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
    ThreadStats::ResetAll();
    BenchConfig bench;
    bench.engine = kind;
    bench.dora_engine = &engine;
    bench.num_clients = clients;
    bench.duration_ms = 1000;
    bench.warmup_ms = 200;
    const BenchResult r = RunBench(&workload, bench);
    const double txns =
        static_cast<double>(r.committed + r.user_aborts) / 100.0;
    std::printf("\n=== %s (%u clients) ===\n",
                kind == EngineKind::kBaseline ? "BASELINE" : "DORA", clients);
    std::printf("  %s\n", r.Summary().c_str());
    std::printf("  breakdown: %s\n", r.breakdown.Row().c_str());
    if (txns > 0) {
      std::printf("  locks/100txn: row=%.1f higher=%.1f dora-local=%.1f\n",
                  r.raw_delta.Locks(LockCounter::kRowLevel) / txns,
                  r.raw_delta.Locks(LockCounter::kHigherLevel) / txns,
                  r.raw_delta.Locks(LockCounter::kDoraLocal) / txns);
    }
  }
  if (!workload.CheckConsistency().ok()) {
    std::printf("CONSISTENCY CHECK FAILED\n");
    return 1;
  }
  std::printf("\nconsistency check passed.\n");
  engine.Stop();
  return 0;
}
