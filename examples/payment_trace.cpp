// Fig. 9 walk-through: traces the 12 steps of one TPC-C Payment transaction
// executing under DORA — dispatch, executor pickup, local locking, RVPs,
// the History insert's RID lock, commit, and completion fan-out.
//
//   $ ./build/examples/payment_trace

#include <cstdio>
#include <mutex>

#include "workloads/tpcc/tpcc.h"

using namespace doradb;

namespace {
std::mutex g_print_mu;
void Step(int n, const char* msg, uint32_t executor = UINT32_MAX) {
  std::lock_guard<std::mutex> g(g_print_mu);
  if (executor == UINT32_MAX) {
    std::printf("step %2d [dispatcher ] %s\n", n, msg);
  } else {
    std::printf("step %2d [executor %2u] %s\n", n, executor, msg);
  }
}
}  // namespace

int main() {
  Database db;
  tpcc::TpccWorkload::Config cfg;
  cfg.warehouses = 2;
  cfg.districts = 2;
  cfg.customers_per_district = 30;
  cfg.items = 50;
  cfg.initial_orders_per_district = 2;
  tpcc::TpccWorkload workload(&db, cfg);
  if (!workload.Load().ok()) return 1;
  const tpcc::Schema& sc = workload.schema();

  dora::DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();

  std::printf("TPC-C Payment under DORA (paper Fig. 9):\n");
  std::printf("flow graph: phase1 {U(WH), U(DI), U(CU)} -> RVP1 -> "
              "phase2 {I(HI)} -> RVP2(commit)\n\n");

  const uint32_t w = 1;
  const uint8_t d = 1;
  const uint32_t c = 7;
  const int64_t amount = 1234;

  Step(1, "client builds the flow graph and atomically enqueues phase-1 "
          "actions to the WH/DI/CU executors (ordered latching, §4.2.3)");

  auto dtxn = engine.BeginTxn();
  dora::FlowGraph g;
  g.AddPhase()
      .AddAction(sc.warehouse, w, dora::LocalMode::kX,
                 [&](dora::ActionEnv& env) -> Status {
                   Step(2, "WH action dequeued", env.self->global_index());
                   Step(3, "local lock table probe: X on warehouse 1 "
                           "granted (no conflict)",
                        env.self->global_index());
                   IndexEntry e;
                   DORADB_RETURN_NOT_OK(db.catalog()->Index(sc.wh_pk)->Probe(
                       tpcc::Schema::WhKey(w), &e));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(env.txn, sc.warehouse,
                                                     e.rid, &bytes,
                                                     AccessOptions::NoCc()));
                   auto row = FromBytes<tpcc::WarehouseRow>(bytes);
                   row.ytd += amount;
                   DORADB_RETURN_NOT_OK(
                       env.db->Update(env.txn, sc.warehouse, e.rid,
                                      AsBytes(row), AccessOptions::NoCc()));
                   Step(4, "WH updated without centralized locks; "
                           "decrement RVP1",
                        env.self->global_index());
                   return Status::OK();
                 })
      .AddAction(sc.district, w, dora::LocalMode::kX,
                 [&](dora::ActionEnv& env) -> Status {
                   IndexEntry e;
                   DORADB_RETURN_NOT_OK(db.catalog()->Index(sc.di_pk)->Probe(
                       tpcc::Schema::DiKey(w, d), &e));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(env.txn, sc.district,
                                                     e.rid, &bytes,
                                                     AccessOptions::NoCc()));
                   auto row = FromBytes<tpcc::DistrictRow>(bytes);
                   row.ytd += amount;
                   DORADB_RETURN_NOT_OK(
                       env.db->Update(env.txn, sc.district, e.rid,
                                      AsBytes(row), AccessOptions::NoCc()));
                   Step(4, "DI updated; decrement RVP1",
                        env.self->global_index());
                   return Status::OK();
                 })
      .AddAction(sc.customer, w, dora::LocalMode::kX,
                 [&](dora::ActionEnv& env) -> Status {
                   IndexEntry e;
                   DORADB_RETURN_NOT_OK(db.catalog()->Index(sc.cu_pk)->Probe(
                       tpcc::Schema::CuKey(w, d, c), &e));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(env.txn, sc.customer,
                                                     e.rid, &bytes,
                                                     AccessOptions::NoCc()));
                   auto row = FromBytes<tpcc::CustomerRow>(bytes);
                   row.balance -= amount;
                   row.ytd_payment += amount;
                   row.payment_cnt++;
                   DORADB_RETURN_NOT_OK(
                       env.db->Update(env.txn, sc.customer, e.rid,
                                      AsBytes(row), AccessOptions::NoCc()));
                   Step(4, "CU updated; decrement RVP1",
                        env.self->global_index());
                   return Status::OK();
                 });
  g.AddPhase().AddAction(
      sc.history, w, dora::LocalMode::kX,
      [&](dora::ActionEnv& env) -> Status {
        Step(5, "last phase-1 action zeroed RVP1 and enqueued the "
                "History action", env.self->global_index());
        Step(6, "HI action dequeued", env.self->global_index());
        Step(7, "local lock table probe: granted",
             env.self->global_index());
        tpcc::HistoryRow h{};
        h.w_id = w;
        h.d_id = d;
        h.c_id = c;
        h.c_w_id = w;
        h.c_d_id = d;
        h.amount = amount;
        Rid rid;
        DORADB_RETURN_NOT_OK(env.db->Insert(env.txn, sc.history, AsBytes(h),
                                            &rid, AccessOptions::RidOnly()));
        Step(8, "History inserted — the ONE centralized lock of this "
                "transaction: the new row's RID (§4.2.1)",
             env.self->global_index());
        Step(9, "zeroing terminal RVP2: executor calls for commit "
                "(log flush)", env.self->global_index());
        return Status::OK();
      });

  const Status s = engine.Run(dtxn, std::move(g));
  Step(10, "storage manager committed; completion messages enqueued to "
           "WH/DI/CU/HI executors");
  Step(11, "executors pick the committed transaction id from their "
           "completed queues");
  Step(12, "executors remove its entries from their local lock tables and "
           "resume any blocked actions");
  std::printf("\nresult: %s | committed txns: %lu\n", s.ToString().c_str(),
              static_cast<unsigned long>(engine.txns_committed()));

  engine.Stop();
  return s.ok() ? 0 : 1;
}
