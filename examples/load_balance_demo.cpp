// Live-repartitioning demo: Zipf-skewed clients hammer the low end of the
// TM1 subscriber space, so one executor of the range-partitioned
// subscriber table soaks up most of the work. The RebalanceController
// watches the load heatmap and — once resumed — splits or moves the hot
// routing range through the ticket-fenced migration path while
// transactions keep flowing. The demo measures the executor busy-fraction
// gap before and after, and fails (exit 1) if no migration happens or the
// workload's integrity check breaks.
//
//   $ ./build/load_balance_demo
//
// Knobs: DORADB_SKEW_THETA (default 0.9), DORADB_STATS_INTERVAL_MS
// (nonzero: periodic DORADB_STATS lines), DORADB_REBALANCE_GAP (default
// 0.15).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dora/rebalance.h"
#include "util/clock.h"
#include "workloads/tm1/tm1.h"

using namespace doradb;

namespace {

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : def;
}

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : def;
}

// Busy fraction per subscriber-table executor over one wall-clock window,
// from the executors' lifetime busy_cycles counters.
struct GapWindow {
  std::vector<double> busy;
  double gap = 0.0;  // max - min
};

GapWindow MeasureGap(dora::DoraEngine& engine, TableId table,
                     uint64_t window_ms) {
  const uint32_t n = engine.executors_of(table);
  std::vector<uint64_t> c0(n);
  for (uint32_t i = 0; i < n; ++i) {
    c0[i] = engine.ExecutorAt(table, i)->busy_cycles();
  }
  const uint64_t t0 = Cycles::Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  const double wall = static_cast<double>(Cycles::Now() - t0);
  GapWindow w;
  double lo = 1.0, hi = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(
                         engine.ExecutorAt(table, i)->busy_cycles() - c0[i]) /
                     wall;
    w.busy.push_back(f);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  w.gap = hi - lo;
  return w;
}

void PrintWindow(const char* when, const GapWindow& w) {
  std::printf("%-22s gap %.3f  busy:", when, w.gap);
  for (size_t i = 0; i < w.busy.size(); ++i) {
    std::printf(" [%zu] %.3f", i, w.busy[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Database::Options db_opts;
  db_opts.stats_interval_ms = EnvU64("DORADB_STATS_INTERVAL_MS", 0);
  Database db(db_opts);

  tm1::Tm1Workload::Config cfg;
  cfg.subscribers = 8000;
  cfg.executors_per_table = 2;
  cfg.skew_theta = EnvDouble("DORADB_SKEW_THETA", 0.9);
  tm1::Tm1Workload workload(&db, cfg);
  if (!workload.Load().ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  dora::DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();
  const TableId sub = workload.schema().subscriber;

  // Controller up but frozen: the "before" window measures raw skew.
  dora::RebalanceController::Options ro;
  ro.min_busy_gap = EnvDouble("DORADB_REBALANCE_GAP", 0.15);
  ro.interval_ms = 25;
  dora::RebalanceController controller(&engine, ro);
  controller.Pause();
  controller.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> retried{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load()) {
        const uint32_t type = workload.PickTxnType(rng);
        const Status s = workload.RunDora(&engine, type, rng);
        if (s.ok()) {
          committed.fetch_add(1);
        } else {
          // TATP's expected aborts (missing destination, duplicate CF row)
          // plus the rare deadlock-retry during a cutover.
          retried.fetch_add(1);
        }
      }
    });
  }

  std::printf("TM1, %lu subscribers, Zipf theta %.2f, %u executors\n",
              static_cast<unsigned long>(cfg.subscribers), cfg.skew_theta,
              cfg.executors_per_table);
  const GapWindow before = MeasureGap(engine, sub, 500);
  PrintWindow("before rebalance:", before);

  controller.Resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (controller.migrations() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (controller.migrations() == 0) {
    std::fprintf(stderr, "FAIL: no migration within 10s (gap gate %.2f)\n",
                 ro.min_busy_gap);
    stop = true;
    for (auto& c : clients) c.join();
    controller.Stop();
    engine.Stop();
    return 1;
  }

  const GapWindow after = MeasureGap(engine, sub, 500);
  PrintWindow("after rebalance:", after);

  stop = true;
  for (auto& c : clients) c.join();
  controller.Stop();

  auto rule = engine.routing_of(sub)->Current();
  std::printf("subscriber routing: %zu datasets, version %lu\n",
              rule->executor_of_dataset.size(),
              static_cast<unsigned long>(rule->version));
  std::printf(
      "migrations %lu (splits %lu, moves %lu, failed %lu) | "
      "committed %lu | expected aborts + retries %lu\n",
      static_cast<unsigned long>(controller.migrations()),
      static_cast<unsigned long>(controller.splits()),
      static_cast<unsigned long>(controller.moves()),
      static_cast<unsigned long>(controller.failed()),
      static_cast<unsigned long>(committed.load()),
      static_cast<unsigned long>(retried.load()));

  const Status c = workload.CheckConsistency();
  engine.Stop();
  if (!c.ok()) {
    std::fprintf(stderr, "FAIL: consistency: %s\n", c.ToString().c_str());
    return 1;
  }
  std::printf("consistency check passed; busy gap %.3f -> %.3f\n",
              before.gap, after.gap);
  return 0;
}
