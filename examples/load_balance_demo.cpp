// Load-balancing demo (paper §A.2.1): skewed clients hammer one slice of
// the TM1 subscriber space; the resource manager observes the imbalance and
// re-partitions the routing rule at runtime using the drain-then-install
// system-action protocol — while transactions keep flowing.
//
//   $ ./build/examples/load_balance_demo

#include <atomic>
#include <cstdio>
#include <thread>

#include "dora/resource_manager.h"
#include "workloads/tm1/tm1.h"

using namespace doradb;

int main() {
  Database db;
  tm1::Tm1Workload::Config cfg;
  cfg.subscribers = 10000;
  cfg.executors_per_table = 2;
  tm1::Tm1Workload workload(&db, cfg);
  if (!workload.Load().ok()) return 1;

  dora::DoraEngine engine(&db);
  workload.SetupDora(&engine);
  engine.Start();

  const TableId sub = workload.schema().subscriber;
  auto print_rule = [&](const char* when) {
    auto rule = engine.routing_of(sub)->Current();
    std::printf("%s: subscriber routing boundary = %lu (executor 0 owns "
                "[0, %lu), executor 1 the rest)\n",
                when,
                static_cast<unsigned long>(
                    rule->boundaries.empty() ? 0 : rule->boundaries[0]),
                static_cast<unsigned long>(
                    rule->boundaries.empty() ? 0 : rule->boundaries[0]));
  };
  print_rule("initial");

  dora::ResourceManager::Options rm_opts;
  rm_opts.sample_interval_us = 100000;
  rm_opts.imbalance_threshold = 1.5;
  dora::ResourceManager rm(&engine, rm_opts);
  rm.Start();

  // Skewed load: every access in the top 10% of the id space (executor 1).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0};
  std::thread client([&] {
    Rng rng(99);
    while (!stop.load()) {
      const uint64_t s_id = rng.UniformInt(cfg.subscribers * 9 / 10 + 1,
                                           cfg.subscribers);
      auto dtxn = engine.BeginTxn();
      dora::FlowGraph g;
      g.AddPhase().AddAction(
          sub, s_id, dora::LocalMode::kS, [&, s_id](dora::ActionEnv& env) {
            IndexEntry e;
            KeyBuilder kb;
            kb.Add64(s_id);
            DORADB_RETURN_NOT_OK(
                db.catalog()->Index(workload.schema().sub_pk)->Probe(
                    kb.View(), &e));
            std::string bytes;
            return env.db->Read(env.txn, sub, e.rid, &bytes,
                                AccessOptions::NoCc());
          });
      if (engine.Run(dtxn, std::move(g)).ok()) done.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop = true;
  client.join();
  rm.Stop();

  print_rule("after skewed load");
  std::printf("transactions executed: %lu | rebalances performed: %lu\n",
              static_cast<unsigned long>(done.load()),
              static_cast<unsigned long>(rm.rebalances()));
  std::printf("expected: the boundary moved toward the hot region so the\n"
              "overloaded executor's dataset shrank (§A.2.1), with zero\n"
              "failed transactions during the handover.\n");
  engine.Stop();
  return 0;
}
