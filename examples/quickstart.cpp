// Quickstart: create a database, define a table + index, and run the same
// transactions through both execution engines — conventional (thread-to-
// transaction) and DORA (thread-to-data).
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "dora/dora_engine.h"
#include "engine/database.h"

using namespace doradb;

int main() {
  // 1. A Database bundles the storage substrate: buffer pool, catalog,
  //    centralized lock manager, ARIES write-ahead log, transactions.
  Database db;

  TableId accounts;
  IndexId accounts_pk;
  db.catalog()->CreateTable("accounts", &accounts);
  db.catalog()->CreateIndex(accounts, "accounts_pk", /*unique=*/true,
                            /*secondary=*/false, &accounts_pk);

  // 2. Conventional execution: the client thread runs the whole
  //    transaction, locking through the centralized lock manager.
  {
    auto txn = db.Begin();
    for (uint64_t id = 1; id <= 10; ++id) {
      const std::string balance = "balance=" + std::to_string(100 * id);
      Rid rid;
      Status s = db.Insert(txn.get(), accounts, balance, &rid,
                           AccessOptions::Baseline());
      if (!s.ok()) {
        std::printf("insert failed: %s\n", s.ToString().c_str());
        db.Abort(txn.get());
        return 1;
      }
      KeyBuilder key;
      key.Add64(id);
      db.IndexInsert(txn.get(), accounts_pk, key.View(),
                     IndexEntry{rid, id, false});
    }
    db.Commit(txn.get());
    std::printf("[baseline] inserted 10 accounts, committed\n");
  }

  // 3. DORA execution: register the table with a routing rule (2 executors
  //    over the id space), then express the transaction as a flow graph of
  //    actions; each action runs on the executor owning its data, guarded
  //    by thread-local locks instead of the lock manager.
  dora::DoraEngine engine(&db);
  engine.RegisterTable(accounts, /*key_space=*/11, /*executors=*/2);
  engine.Start();

  auto dtxn = engine.BeginTxn();
  dora::FlowGraph graph;
  graph.AddPhase()
      .AddAction(accounts, /*routing_value=*/3, dora::LocalMode::kX,
                 [&](dora::ActionEnv& env) -> Status {
                   KeyBuilder key;
                   key.Add64(3);
                   IndexEntry e;
                   DORADB_RETURN_NOT_OK(
                       env.db->catalog()->Index(accounts_pk)->Probe(
                           key.View(), &e));
                   // Executor-serialized: no centralized locks needed.
                   return env.db->Update(env.txn, accounts, e.rid,
                                         "balance=999",
                                         AccessOptions::NoCc());
                 })
      .AddAction(accounts, /*routing_value=*/8, dora::LocalMode::kS,
                 [&](dora::ActionEnv& env) -> Status {
                   KeyBuilder key;
                   key.Add64(8);
                   IndexEntry e;
                   DORADB_RETURN_NOT_OK(
                       env.db->catalog()->Index(accounts_pk)->Probe(
                           key.View(), &e));
                   std::string value;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, accounts, e.rid, &value,
                       AccessOptions::NoCc()));
                   std::printf("[dora] executor %u read account 8: %s\n",
                               env.self->index_in_table(), value.c_str());
                   return Status::OK();
                 });
  const Status s = engine.Run(dtxn, std::move(graph));
  std::printf("[dora] flow graph finished: %s\n", s.ToString().c_str());

  engine.Stop();
  std::printf("done. committed=%lu\n",
              static_cast<unsigned long>(engine.txns_committed()));
  return s.ok() ? 0 : 1;
}
