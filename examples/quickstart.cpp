// Quickstart: create a database, define a table + index, run the same
// transactions through both execution engines — conventional (thread-to-
// transaction) and DORA (thread-to-data) — then demonstrate the durable
// path: kill the database and reopen its data directory in a "second
// lifetime" that never re-declares the schema.
//
//   $ ./build/quickstart
//
// The self-describing catalog (<data_dir>/catalog.db) carries table and
// index names, ids, key schemas, and DORA routing config, so reopening is
// just Database(Options{data_dir}) + Recover().

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "dora/dora_engine.h"
#include "engine/database.h"

using namespace doradb;

int main() {
  // A scratch data directory: non-empty Options::data_dir selects durable
  // mode (segment-file WAL + pages.db + catalog.db).
  const std::string data_dir =
      std::filesystem::temp_directory_path() / "doradb_quickstart";
  std::filesystem::remove_all(data_dir);
  Database::Options options;
  options.data_dir = data_dir;

  // ------------------------------------------------- lifetime 1: create
  {
    // 1. A Database bundles the storage substrate: buffer pool, catalog,
    //    centralized lock manager, ARIES write-ahead log, transactions.
    Database db(options);

    // 2. Declare the schema ONCE. The IndexKeySpec tells the engine how
    //    index keys derive from record bytes (here: a little-endian u64 at
    //    offset 0, also used as the DORA aux payload), which lets a later
    //    lifetime rebuild the index without this code. Every DDL is
    //    written through to catalog.db before it returns.
    TableId accounts;
    IndexId accounts_pk;
    Status ddl = db.catalog()->CreateTable("accounts", &accounts);
    if (ddl.ok()) {
      ddl = db.catalog()->CreateIndex(accounts, "accounts_pk",
                                      /*unique=*/true, /*secondary=*/false,
                                      IndexKeySpec::U64At(0, 0), &accounts_pk);
    }
    if (!ddl.ok()) {  // durable DDL can fail (unwritable data_dir, ...)
      std::printf("schema creation failed: %s\n", ddl.ToString().c_str());
      return 1;
    }

    // 3. Conventional execution: the client thread runs the whole
    //    transaction, locking through the centralized lock manager.
    //    Records here are "<8-byte LE id><balance text>".
    auto txn = db.Begin();
    for (uint64_t id = 1; id <= 10; ++id) {
      std::string record(8, '\0');
      std::memcpy(record.data(), &id, 8);
      record += "balance=" + std::to_string(100 * id);
      Rid rid;
      Status s = db.Insert(txn.get(), accounts, record, &rid,
                           AccessOptions::Baseline());
      if (!s.ok()) {
        std::printf("insert failed: %s\n", s.ToString().c_str());
        db.Abort(txn.get());
        return 1;
      }
      KeyBuilder key;
      key.Add64(id);
      db.IndexInsert(txn.get(), accounts_pk, key.View(),
                     IndexEntry{rid, id, false});
    }
    db.Commit(txn.get());
    std::printf("[lifetime 1] inserted 10 accounts, committed\n");

    // 4. DORA execution: register the table with a routing rule (2
    //    executors over the id space) — recorded in the catalog — then
    //    express the transaction as a flow graph of actions; each action
    //    runs on the executor owning its data, guarded by thread-local
    //    locks instead of the lock manager.
    dora::DoraEngine engine(&db);
    engine.RegisterTable(accounts, /*key_space=*/11, /*executors=*/2);
    engine.Start();

    auto dtxn = engine.BeginTxn();
    dora::FlowGraph graph;
    graph.AddPhase().AddAction(
        accounts, /*routing_value=*/3, dora::LocalMode::kX,
        [&](dora::ActionEnv& env) -> Status {
          KeyBuilder key;
          key.Add64(3);
          IndexEntry e;
          DORADB_RETURN_NOT_OK(
              env.db->catalog()->Index(accounts_pk)->Probe(key.View(), &e));
          std::string record(8, '\0');
          const uint64_t id = 3;
          std::memcpy(record.data(), &id, 8);
          record += "balance=999";
          // Executor-serialized: no centralized locks needed.
          return env.db->Update(env.txn, accounts, e.rid, record,
                                AccessOptions::NoCc());
        });
    const Status s = engine.Run(dtxn, std::move(graph));
    std::printf("[lifetime 1] dora flow graph finished: %s (committed=%lu)\n",
                s.ToString().c_str(),
                static_cast<unsigned long>(engine.txns_committed()));
    engine.Stop();
    if (!s.ok()) return 1;

    // 5. Die without warning: buffers gone, segment files left exactly as
    //    a killed process leaves them.
    db.SimulateKill();
  }

  // ---------------------------------------------- lifetime 2: reopen
  // A fresh process over the same directory. NO CreateTable, NO
  // CreateIndex, no workload callback: the catalog replays from
  // catalog.db, Recover() replays the WAL and rebuilds the index from its
  // persisted key spec, and RegisterFromCatalog rewires DORA.
  {
    Database db(options);
    if (!db.catalog_load_status().ok()) {
      std::printf("catalog load failed: %s\n",
                  db.catalog_load_status().ToString().c_str());
      return 1;
    }
    Status s = db.Recover();
    if (!s.ok()) {
      std::printf("recovery failed: %s\n", s.ToString().c_str());
      return 1;
    }

    TableInfo* accounts = db.catalog()->GetTable("accounts");
    IndexInfo* pk = db.catalog()->GetIndex("accounts_pk");
    if (accounts == nullptr || pk == nullptr) {
      std::printf("recovered catalog is missing the schema\n");
      return 1;
    }
    std::printf("[lifetime 2] recovered %zu table(s), %zu index(es), "
                "%llu account rows\n",
                db.catalog()->num_tables(), db.catalog()->num_indexes(),
                static_cast<unsigned long long>(
                    accounts->heap->record_count()));

    KeyBuilder key;
    key.Add64(3);
    IndexEntry e;
    s = pk->tree->Probe(key.View(), &e);
    if (!s.ok()) {
      std::printf("probe failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::string record;
    s = db.catalog()->Heap(accounts->id)->Get(e.rid, &record);
    if (!s.ok()) {
      std::printf("heap read failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[lifetime 2] account 3 after restart: %s\n",
                record.substr(8).c_str());  // skip the 8-byte id prefix

    dora::DoraEngine engine(&db);
    const uint32_t rewired = engine.RegisterFromCatalog();
    std::printf("[lifetime 2] dora rewired from catalog: %u table(s), "
                "%u executor(s) on accounts\n",
                rewired, engine.executors_of(accounts->id));
    engine.Start();
    engine.Stop();

    const bool ok = record.substr(8) == "balance=999";
    std::printf("done. committed=1 self_contained_reopen=%s\n",
                ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
  }
}
