// Obs endpoint smoke: start a database with the live metrics endpoint,
// the stall watchdog, and the stats reporter all on, run a short TM1
// burst through DORA, then scrape /metrics, /heatmap, and /healthz over
// a real loopback socket — the same path curl or a dashboard would use.
//
//   $ ./build/obs_endpoint_smoke > smoke.log 2>&1
//   $ python3 ci/check_metrics_json.py smoke.log
//
// The /metrics body is schema-identical to a DORADB_STATS payload, so it
// is re-printed with that prefix for ci/check_metrics_json.py; /heatmap
// and /healthz are structurally checked here. Exits nonzero on any
// missing route, unhealthy verdict, or empty payload.
//
// Knobs: DORADB_BENCH_MS (default 400), DORADB_TM1_SUBS (default 2000).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dora/dora_engine.h"
#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"

using namespace doradb;

namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10) : def;
}

// One HTTP/1.0 GET against the loopback endpoint; returns status (or -1)
// and fills `body`.
int HttpGet(int port, const std::string& path, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::write(fd, req.data(), req.size()) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return -1;
  }
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) resp.append(buf, n);
  ::close(fd);
  int status = -1;
  if (resp.rfind("HTTP/", 0) == 0) {
    const size_t sp = resp.find(' ');
    if (sp != std::string::npos) status = std::atoi(resp.c_str() + sp + 1);
  }
  const size_t at = resp.find("\r\n\r\n");
  *body = at == std::string::npos ? "" : resp.substr(at + 4);
  return status;
}

bool Fail(const char* what) {
  std::fprintf(stderr, "obs_endpoint_smoke: FAIL: %s\n", what);
  return false;
}

}  // namespace

int main() {
  bool ok = true;
  std::string metrics_body;
  // Scope the database: scrape into buffers while it lives, print the
  // scraped /metrics payload only after its reporter thread has emitted
  // its final line — otherwise the re-emitted DORADB_STATS line races
  // the reporter's stderr writes and tears in a combined log.
  {
    Database::Options options;
    options.stats_interval_ms = 50;     // DORADB_STATS lines for the checker
    options.watchdog_interval_ms = 50;  // heatmap sweeps + /healthz verdict
    options.obs_port = 0;               // ephemeral loopback port
    Database db(options);
    if (db.obs_port() <= 0) {
      std::fprintf(stderr, "obs_endpoint_smoke: endpoint failed to bind\n");
      return 1;
    }
    std::printf("endpoint on 127.0.0.1:%d\n", db.obs_port());

    tm1::Tm1Workload::Config cfg;
    cfg.subscribers = EnvU64("DORADB_TM1_SUBS", 2000);
    cfg.executors_per_table = 2;
    tm1::Tm1Workload workload(&db, cfg);
    if (!workload.Load().ok()) {
      std::fprintf(stderr, "obs_endpoint_smoke: TM1 load failed\n");
      return 1;
    }
    dora::DoraEngine engine(&db);
    workload.SetupDora(&engine);
    engine.Start();

    ThreadStats::ResetAll();
    BenchConfig bench;
    bench.engine = EngineKind::kDora;
    bench.dora_engine = &engine;
    bench.num_clients = 2;
    bench.duration_ms = static_cast<uint32_t>(EnvU64("DORADB_BENCH_MS", 400));
    bench.warmup_ms = 50;
    const BenchResult r = RunBench(&workload, bench);
    std::printf("ran %lu txns through DORA\n",
                static_cast<unsigned long>(r.committed));

    std::string body;
    int status = HttpGet(db.obs_port(), "/metrics", &metrics_body);
    if (status != 200 || metrics_body.empty()) {
      ok = Fail("/metrics not 200/non-empty");
    }

    status = HttpGet(db.obs_port(), "/heatmap", &body);
    if (status != 200 || body.find("\"windows\":[") == std::string::npos) {
      ok = Fail("/heatmap missing windows array");
    }
    if (body.find("\"busy_frac\":") == std::string::npos) {
      ok = Fail("/heatmap has no executor rows (no sweep ran?)");
    }

    status = HttpGet(db.obs_port(), "/healthz", &body);
    if (status != 200 || body.find("\"ok\":true") == std::string::npos) {
      std::fprintf(stderr, "healthz: status=%d body=%s\n", status,
                   body.c_str());
      ok = Fail("/healthz not healthy after a clean run");
    }

    if (HttpGet(db.obs_port(), "/bogus", &body) != 404) {
      ok = Fail("unknown route did not 404");
    }

    engine.Stop();
    if (!workload.CheckConsistency().ok()) ok = Fail("consistency check");
  }

  // /metrics re-emitted with the DORADB_STATS prefix so the CI schema
  // checker validates the endpoint payload exactly like a reporter line.
  std::printf("DORADB_STATS %s\n", metrics_body.c_str());
  std::printf("obs_endpoint_smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
